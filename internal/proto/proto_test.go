package proto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x00, 0xA0, 0xC9, 0x11, 0x22, 0x33}
	macB = MAC{0x00, 0xA0, 0xC9, 0x44, 0x55, 0x66}
	ipA  = IP{10, 0, 0, 1}
	ipB  = IP{10, 0, 0, 2}
)

func TestEthRoundTrip(t *testing.T) {
	in := EthFrame{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: []byte("hello world")}
	wire := MarshalEth(in)
	out, err := UnmarshalEth(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dst != in.Dst || out.Src != in.Src || out.EtherType != in.EtherType {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
}

func TestEthRejectsCorruption(t *testing.T) {
	wire := MarshalEth(EthFrame{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: []byte("data")})
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0xFF
		if _, err := UnmarshalEth(bad); !errors.Is(err, ErrBadFCS) {
			t.Fatalf("corruption at byte %d not detected: %v", i, err)
		}
	}
	if _, err := UnmarshalEth(wire[:10]); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short frame: %v", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{TOS: 0x10, ID: 777, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB,
		MoreFrags: true, FragOffset: 12}
	payload := []byte("ip payload bytes")
	wire := MarshalIPv4(h, payload)
	got, body, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 777 || got.TTL != 64 || got.Protocol != ProtoUDP ||
		got.Src != ipA || got.Dst != ipB || !got.MoreFrags || got.FragOffset != 12 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestIPv4ChecksumDetectsHeaderCorruption(t *testing.T) {
	wire := MarshalIPv4(IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB}, []byte("x"))
	for i := 0; i < IPv4HeaderLen; i++ {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x55
		if _, _, err := UnmarshalIPv4(bad); err == nil {
			t.Fatalf("header corruption at byte %d not detected", i)
		}
	}
}

func TestIPv4Validation(t *testing.T) {
	if _, _, err := UnmarshalIPv4([]byte{0x45}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short: %v", err)
	}
	wire := MarshalIPv4(IPv4Header{TTL: 1, Protocol: 1, Src: ipA, Dst: ipB}, nil)
	wire[0] = 0x65 // version 6
	if _, _, err := UnmarshalIPv4(wire); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	seg := MarshalUDP(UDPHeader{SrcPort: 9960, DstPort: 9961}, ipA, ipB, []byte("frame data"))
	h, payload, err := UnmarshalUDP(seg, ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 9960 || h.DstPort != 9961 {
		t.Fatalf("ports: %+v", h)
	}
	if string(payload) != "frame data" {
		t.Fatalf("payload: %q", payload)
	}
}

func TestUDPChecksumCoversPseudoHeader(t *testing.T) {
	seg := MarshalUDP(UDPHeader{SrcPort: 1, DstPort: 2}, ipA, ipB, []byte("data"))
	// Same segment presented with the wrong source IP must fail: the
	// pseudo-header is part of the checksum.
	if _, _, err := UnmarshalUDP(seg, IP{9, 9, 9, 9}, ipB); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("pseudo-header not covered: %v", err)
	}
	// Payload corruption must fail too.
	bad := append([]byte(nil), seg...)
	bad[len(bad)-1] ^= 1
	if _, _, err := UnmarshalUDP(bad, ipA, ipB); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("payload corruption not detected: %v", err)
	}
	if _, _, err := UnmarshalUDP(seg[:4], ipA, ipB); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: the checksum of a buffer including its own correct
	// checksum field verifies to zero.
	b := MarshalIPv4(IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB}, nil)
	if got := Checksum(b[:IPv4HeaderLen]); got != 0 {
		t.Fatalf("self-check = %#x, want 0", got)
	}
	if Checksum([]byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}) != ^uint16(0xddf2) {
		t.Fatal("RFC 1071 example mismatch")
	}
}

func TestMediaHeaderRoundTrip(t *testing.T) {
	h := MediaHeader{StreamID: 3, Seq: 99, FrameSize: 1000, FragOff: 500}
	frag := bytes.Repeat([]byte{0xAB}, 500)
	b := MarshalMedia(h, frag)
	got, body, err := UnmarshalMedia(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(body, frag) {
		t.Fatalf("mismatch: %+v", got)
	}
	if _, _, err := UnmarshalMedia(b[:10]); !errors.Is(err, ErrTooShort) {
		t.Errorf("short: %v", err)
	}
	b[0] = 0
	if _, _, err := UnmarshalMedia(b); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	over := MarshalMedia(MediaHeader{FrameSize: 10, FragOff: 8}, []byte{1, 2, 3, 4})
	if _, _, err := UnmarshalMedia(over); err == nil {
		t.Error("fragment overflow not detected")
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	frame := make([]byte, 3*MaxMediaPayload+123)
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	frags := FragmentFrame(5, 42, frame)
	if len(frags) != 4 {
		t.Fatalf("fragments = %d, want 4", len(frags))
	}
	var gotStream, gotSeq uint32
	var got []byte
	r := NewReassembler(func(s, q uint32, f []byte) {
		gotStream, gotSeq = s, q
		got = f
	})
	for _, f := range frags {
		if err := r.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	if gotStream != 5 || gotSeq != 42 {
		t.Fatalf("ids = %d/%d", gotStream, gotSeq)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("reassembled frame differs")
	}
	if r.Completed != 1 || r.Pending() != 0 {
		t.Fatalf("completed=%d pending=%d", r.Completed, r.Pending())
	}
}

func TestReassemblerDiscardsIncompleteOnNewFrame(t *testing.T) {
	frameA := make([]byte, 2*MaxMediaPayload)
	frameB := []byte("tiny")
	fragsA := FragmentFrame(1, 1, frameA)
	fragsB := FragmentFrame(1, 2, frameB)
	done := 0
	r := NewReassembler(func(_, seq uint32, f []byte) {
		done++
		if seq != 2 || !bytes.Equal(f, frameB) {
			t.Fatalf("wrong frame completed: seq=%d", seq)
		}
	})
	r.Ingest(fragsA[0]) // first half of A, second half lost
	r.Ingest(fragsB[0]) // B arrives: A must be discarded
	if done != 1 || r.Discarded != 1 {
		t.Fatalf("done=%d discarded=%d", done, r.Discarded)
	}
}

func TestReassemblerInterleavedStreams(t *testing.T) {
	fa := bytes.Repeat([]byte{1}, 2*MaxMediaPayload)
	fb := bytes.Repeat([]byte{2}, 2*MaxMediaPayload)
	a := FragmentFrame(1, 0, fa)
	b := FragmentFrame(2, 0, fb)
	completed := map[uint32][]byte{}
	r := NewReassembler(func(s, _ uint32, f []byte) { completed[s] = f })
	r.Ingest(a[0])
	r.Ingest(b[0])
	r.Ingest(a[1])
	r.Ingest(b[1])
	if !bytes.Equal(completed[1], fa) || !bytes.Equal(completed[2], fb) {
		t.Fatal("interleaved streams not reassembled independently")
	}
}

func TestZeroLengthFrame(t *testing.T) {
	frags := FragmentFrame(1, 7, nil)
	if len(frags) != 1 {
		t.Fatalf("fragments = %d", len(frags))
	}
	seen := false
	r := NewReassembler(func(_, seq uint32, f []byte) {
		seen = true
		if seq != 7 || len(f) != 0 {
			t.Fatalf("seq=%d len=%d", seq, len(f))
		}
	})
	if err := r.Ingest(frags[0]); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("empty frame not delivered")
	}
}

func TestFullStackMediaPacket(t *testing.T) {
	frame := bytes.Repeat([]byte{0xCD}, 900)
	frags := FragmentFrame(9, 1, frame)
	wire := BuildMediaPacket(macA, macB, ipA, ipB, 9960, 9961, 1234, frags[0])
	if len(wire) > EthHeaderLen+EthMTU+EthFCSLen {
		t.Fatalf("packet exceeds Ethernet frame: %d bytes", len(wire))
	}
	h, frag, err := ParseMediaPacket(wire)
	if err != nil {
		t.Fatal(err)
	}
	if h.StreamID != 9 || h.Seq != 1 || int(h.FrameSize) != len(frame) {
		t.Fatalf("header: %+v", h)
	}
	if !bytes.Equal(frag, frame) {
		t.Fatal("fragment mismatch")
	}
	// Any single-bit corruption anywhere must be caught by some layer.
	for _, i := range []int{0, 20, 40, 60, len(wire) - 1} {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, _, err := ParseMediaPacket(bad); err == nil {
			t.Fatalf("corruption at %d undetected", i)
		}
	}
}

// Property: fragment+reassemble is the identity for any frame content.
func TestFragmentReassembleProperty(t *testing.T) {
	f := func(frame []byte, stream, seq uint32) bool {
		var got []byte
		ok := false
		r := NewReassembler(func(s, q uint32, f []byte) {
			ok = s == stream && q == seq
			got = f
		})
		for _, frag := range FragmentFrame(stream, seq, frame) {
			if r.Ingest(frag) != nil {
				return false
			}
		}
		return ok && bytes.Equal(got, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every layer round-trips arbitrary payloads.
func TestLayerRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sport, dport uint16) bool {
		seg := MarshalUDP(UDPHeader{SrcPort: sport, DstPort: dport}, ipA, ipB, payload)
		h, body, err := UnmarshalUDP(seg, ipA, ipB)
		if err != nil || h.SrcPort != sport || h.DstPort != dport || !bytes.Equal(body, payload) {
			return false
		}
		ip := MarshalIPv4(IPv4Header{TTL: 3, Protocol: ProtoUDP, Src: ipA, Dst: ipB}, seg)
		_, ipBody, err := UnmarshalIPv4(ip)
		if err != nil || !bytes.Equal(ipBody, seg) {
			return false
		}
		eth := MarshalEth(EthFrame{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: ip})
		fr, err := UnmarshalEth(eth)
		return err == nil && bytes.Equal(fr.Payload, ip)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if macA.String() != "00:a0:c9:11:22:33" {
		t.Errorf("MAC = %s", macA)
	}
	if ipA.String() != "10.0.0.1" {
		t.Errorf("IP = %s", ipA)
	}
}

// Property: parsers never panic and never return garbage-accepted results
// on arbitrary byte soup.
func TestParsersRobustToRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		// Any of these may error; none may panic.
		_, _ = UnmarshalEth(raw)
		_, _, _ = UnmarshalIPv4(raw)
		_, _, _ = UnmarshalUDP(raw, ipA, ipB)
		_, _, _ = UnmarshalMedia(raw)
		_, _, _ = ParseMediaPacket(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a reassembler fed arbitrary interleavings of valid fragments
// and garbage never completes a frame with wrong content.
func TestReassemblerRobustness(t *testing.T) {
	f := func(garbage [][]byte, frame []byte, seed uint32) bool {
		ok := true
		r := NewReassembler(func(_, _ uint32, got []byte) {
			if !bytes.Equal(got, frame) {
				ok = false
			}
		})
		frags := FragmentFrame(1, seed, frame)
		gi := 0
		for _, fr := range frags {
			if gi < len(garbage) {
				_ = r.Ingest(garbage[gi]) // errors ignored; must not corrupt
				gi++
			}
			if err := r.Ingest(fr); err != nil {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
