package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MediaHeaderLen is the size of the media framing header that rides inside
// each UDP datagram: magic(4) stream(4) seq(4) frameSize(4) fragOff(4).
const MediaHeaderLen = 20

// MediaMagic identifies DWCS media datagrams ("DWCS").
const MediaMagic = 0x44574353

// MaxMediaPayload is the media payload per datagram such that the whole
// UDP/IP packet fits one Ethernet frame.
const MaxMediaPayload = EthMTU - IPv4HeaderLen - UDPHeaderLen - MediaHeaderLen

// MediaHeader describes one fragment of one media frame.
type MediaHeader struct {
	StreamID  uint32
	Seq       uint32 // frame sequence number within the stream
	FrameSize uint32 // total size of the media frame
	FragOff   uint32 // offset of this fragment within the frame
}

// ErrBadMagic reports a non-media datagram.
var ErrBadMagic = errors.New("proto: bad media magic")

// MarshalMedia prepends the media header to a fragment payload.
func MarshalMedia(h MediaHeader, frag []byte) []byte {
	out := make([]byte, MediaHeaderLen+len(frag))
	binary.BigEndian.PutUint32(out[0:4], MediaMagic)
	binary.BigEndian.PutUint32(out[4:8], h.StreamID)
	binary.BigEndian.PutUint32(out[8:12], h.Seq)
	binary.BigEndian.PutUint32(out[12:16], h.FrameSize)
	binary.BigEndian.PutUint32(out[16:20], h.FragOff)
	copy(out[MediaHeaderLen:], frag)
	return out
}

// UnmarshalMedia splits a datagram payload into header and fragment.
func UnmarshalMedia(b []byte) (MediaHeader, []byte, error) {
	if len(b) < MediaHeaderLen {
		return MediaHeader{}, nil, ErrTooShort
	}
	if binary.BigEndian.Uint32(b[0:4]) != MediaMagic {
		return MediaHeader{}, nil, ErrBadMagic
	}
	h := MediaHeader{
		StreamID:  binary.BigEndian.Uint32(b[4:8]),
		Seq:       binary.BigEndian.Uint32(b[8:12]),
		FrameSize: binary.BigEndian.Uint32(b[12:16]),
		FragOff:   binary.BigEndian.Uint32(b[16:20]),
	}
	if int(h.FragOff)+len(b)-MediaHeaderLen > int(h.FrameSize) {
		return MediaHeader{}, nil, fmt.Errorf("proto: fragment exceeds frame (%d+%d > %d)",
			h.FragOff, len(b)-MediaHeaderLen, h.FrameSize)
	}
	return h, b[MediaHeaderLen:], nil
}

// FragmentFrame splits one media frame into datagram payloads, each at most
// MaxMediaPayload of media data. A zero-length frame yields one empty
// fragment so the receiver still observes the sequence number.
func FragmentFrame(streamID, seq uint32, frame []byte) [][]byte {
	if len(frame) == 0 {
		return [][]byte{MarshalMedia(MediaHeader{StreamID: streamID, Seq: seq}, nil)}
	}
	var out [][]byte
	for off := 0; off < len(frame); off += MaxMediaPayload {
		end := off + MaxMediaPayload
		if end > len(frame) {
			end = len(frame)
		}
		out = append(out, MarshalMedia(MediaHeader{
			StreamID:  streamID,
			Seq:       seq,
			FrameSize: uint32(len(frame)),
			FragOff:   uint32(off),
		}, frame[off:end]))
	}
	return out
}

// Reassembler rebuilds media frames from fragments, per stream. Frames may
// interleave across streams but fragments of one frame are assumed to
// arrive in order within their stream (UDP on a single path), with gaps
// allowed — an incomplete frame is discarded when a fragment of a newer
// frame arrives (a player can't use half a frame late).
type Reassembler struct {
	// OnFrame receives each completed frame.
	OnFrame func(streamID, seq uint32, frame []byte)

	partial map[uint32]*partialFrame

	// Completed and Discarded count reassembly outcomes.
	Completed int64
	Discarded int64
}

type partialFrame struct {
	seq  uint32
	buf  []byte
	got  int
	want int
}

// NewReassembler returns an empty reassembler.
func NewReassembler(onFrame func(streamID, seq uint32, frame []byte)) *Reassembler {
	return &Reassembler{OnFrame: onFrame, partial: make(map[uint32]*partialFrame)}
}

// Ingest consumes one datagram payload. Malformed datagrams are reported as
// errors and ignored.
func (r *Reassembler) Ingest(b []byte) error {
	h, frag, err := UnmarshalMedia(b)
	if err != nil {
		return err
	}
	p := r.partial[h.StreamID]
	if p != nil && p.seq != h.Seq {
		// Newer (or re-ordered) frame: the half-built one is lost.
		r.Discarded++
		delete(r.partial, h.StreamID)
		p = nil
	}
	if p == nil {
		p = &partialFrame{
			seq:  h.Seq,
			buf:  make([]byte, h.FrameSize),
			want: int(h.FrameSize),
		}
		r.partial[h.StreamID] = p
	}
	copy(p.buf[h.FragOff:], frag)
	p.got += len(frag)
	if p.got >= p.want {
		delete(r.partial, h.StreamID)
		r.Completed++
		if r.OnFrame != nil {
			r.OnFrame(h.StreamID, h.Seq, p.buf)
		}
	}
	return nil
}

// Pending reports streams with incomplete frames.
func (r *Reassembler) Pending() int { return len(r.partial) }

// BuildMediaPacket wraps one media fragment in UDP, IPv4, and Ethernet —
// the full encapsulation the NI's transmit path performs.
func BuildMediaPacket(srcMAC, dstMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16, ipID uint16, fragment []byte) []byte {
	udp := MarshalUDP(UDPHeader{SrcPort: srcPort, DstPort: dstPort}, srcIP, dstIP, fragment)
	ip := MarshalIPv4(IPv4Header{
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
		DontFrag: true, // media fragments are sized to fit the MTU
	}, udp)
	return MarshalEth(EthFrame{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4, Payload: ip})
}

// ParseMediaPacket reverses BuildMediaPacket, verifying every layer.
func ParseMediaPacket(wire []byte) (MediaHeader, []byte, error) {
	eth, err := UnmarshalEth(wire)
	if err != nil {
		return MediaHeader{}, nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return MediaHeader{}, nil, ErrBadVersion
	}
	iph, ipPayload, err := UnmarshalIPv4(eth.Payload)
	if err != nil {
		return MediaHeader{}, nil, err
	}
	if iph.Protocol != ProtoUDP {
		return MediaHeader{}, nil, ErrNotUDP
	}
	_, udpPayload, err := UnmarshalUDP(ipPayload, iph.Src, iph.Dst)
	if err != nil {
		return MediaHeader{}, nil, err
	}
	return UnmarshalMedia(udpPayload)
}
