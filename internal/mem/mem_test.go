package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
)

func TestRegisterFileRoundTrip(t *testing.T) {
	r := NewRegisterFile(nil)
	r.WriteWord(0, 42)
	r.WriteWord(HardwareQueueRegisters-1, 7)
	if got := r.ReadWord(0); got != 42 {
		t.Errorf("reg[0] = %d", got)
	}
	if got := r.ReadWord(HardwareQueueRegisters - 1); got != 7 {
		t.Errorf("reg[last] = %d", got)
	}
	if r.Cap() != HardwareQueueRegisters {
		t.Errorf("Cap = %d", r.Cap())
	}
	if r.Kind() != "hw-registers" {
		t.Errorf("Kind = %q", r.Kind())
	}
}

func TestDRAMStoreRoundTrip(t *testing.T) {
	d := NewDRAMStore(nil, 16)
	d.WriteWord(3, 99)
	if got := d.ReadWord(3); got != 99 {
		t.Errorf("word[3] = %d", got)
	}
	if d.Cap() != 16 {
		t.Errorf("Cap = %d", d.Cap())
	}
	if d.Kind() != "pinned-dram" {
		t.Errorf("Kind = %q", d.Kind())
	}
}

func TestStoresChargeDifferentOpClasses(t *testing.T) {
	mr := cpu.NewMeter(cpu.I960RD())
	reg := NewRegisterFile(mr)
	reg.WriteWord(0, 1)
	reg.ReadWord(0)
	if mr.Count(cpu.OpRegRead) != 1 || mr.Count(cpu.OpRegWrite) != 1 {
		t.Error("register file should charge register ops")
	}
	if mr.Count(cpu.OpMemRead) != 0 {
		t.Error("register file must not charge memory ops")
	}

	md := cpu.NewMeter(cpu.I960RD())
	dram := NewDRAMStore(md, 4)
	dram.WriteWord(0, 1)
	dram.ReadWord(0)
	if md.Count(cpu.OpMemRead) != 1 || md.Count(cpu.OpMemWrite) != 1 {
		t.Error("DRAM store should charge memory ops")
	}
}

func TestRegisterFileImmuneToCacheState(t *testing.T) {
	on := cpu.NewMeter(cpu.I960RD())
	off := cpu.NewMeter(cpu.I960RD())
	off.CacheOn = false
	NewRegisterFile(on).ReadWord(0)
	NewRegisterFile(off).ReadWord(0)
	if on.Cycles() != off.Cycles() {
		t.Fatalf("register access cost differs with cache state: %d vs %d", on.Cycles(), off.Cycles())
	}
}

func TestMemoryAllocFree(t *testing.T) {
	m := NewMemory(1000)
	a, err := m.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 1000 || m.Avail() != 0 {
		t.Fatalf("used=%d avail=%d", m.Used(), m.Avail())
	}
	if _, err := m.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	m.Free(a)
	if m.Avail() != 400 {
		t.Fatalf("avail after free = %d", m.Avail())
	}
	m.Free(b)
	if m.Used() != 0 {
		t.Fatalf("used after frees = %d", m.Used())
	}
	if m.Peak() != 1000 {
		t.Fatalf("peak = %d", m.Peak())
	}
	if m.Size() != 1000 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestMemoryDoubleFreePanics(t *testing.T) {
	m := NewMemory(100)
	a, _ := m.Alloc(10)
	m.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double free")
		}
	}()
	m.Free(a)
}

func TestMemoryNegativeAlloc(t *testing.T) {
	m := NewMemory(100)
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("expected error for negative allocation")
	}
}

func TestDefaultCardMemoryHolds4MB(t *testing.T) {
	m := NewMemory(DefaultCardMemory)
	// The paper stores ~150 MPEG frames (tens of KB each) plus descriptors
	// in 4 MB; confirm that budget fits.
	for i := 0; i < 151; i++ {
		if _, err := m.Alloc(20 << 10); err != nil {
			t.Fatalf("frame %d failed: %v", i, err)
		}
	}
	if m.Avail() < 0 {
		t.Fatal("negative avail")
	}
}

// Property: used never exceeds size and alloc+free is balanced.
func TestMemoryInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewMemory(1 << 20)
		var live []Addr
		for _, s := range sizes {
			if a, err := m.Alloc(int64(s)); err == nil {
				live = append(live, a)
			}
			if m.Used() > m.Size() {
				return false
			}
		}
		for _, a := range live {
			m.Free(a)
		}
		return m.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: word stores return the last value written at each index.
func TestWordStoreLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		I uint8
		V uint32
	}) bool {
		stores := []WordStore{NewRegisterFile(nil), NewDRAMStore(nil, 256)}
		for _, s := range stores {
			shadow := make(map[int]uint32)
			for _, w := range writes {
				i := int(w.I) % s.Cap()
				s.WriteWord(i, w.V)
				shadow[i] = w.V
			}
			for i, v := range shadow {
				if s.ReadWord(i) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
