// Package mem models the i960 RD card's memory resources: pinned local DRAM
// (4 MB installed, expandable to 36 MB, §3.1.2) and the 'Hardware Queues' —
// a file of 1004 32-bit memory-mapped registers whose accesses generate no
// external bus cycles (§4.2.1).
//
// Both expose the WordStore interface so the scheduler's descriptor rings
// can live in either, reproducing the Table 2 (DRAM) versus Table 3
// (register file) comparison by construction: the two stores charge
// different operation classes on the same cpu.Meter.
package mem

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
)

// HardwareQueueRegisters is the number of 32-bit registers in the i960 RD
// hardware-queue register file.
const HardwareQueueRegisters = 1004

// DefaultCardMemory is the installed local memory of the I2O cards used in
// the paper.
const DefaultCardMemory = 4 << 20 // 4 MB

// ErrOutOfMemory is returned when an allocation exceeds the card's installed
// memory — the constraint that drives the paper's single-copy frame design.
var ErrOutOfMemory = errors.New("mem: card memory exhausted")

// WordStore is a bounded array of 32-bit words that charges a cpu.Meter per
// access. Frame descriptors (addresses plus attributes) are stored as words.
type WordStore interface {
	// ReadWord returns word i, charging the meter.
	ReadWord(i int) uint32
	// WriteWord sets word i, charging the meter.
	WriteWord(i int, v uint32)
	// Cap returns the number of words available.
	Cap() int
	// Kind names the store for reports ("pinned-dram", "hw-registers").
	Kind() string
}

// RegisterFile is the memory-mapped hardware-queue register file. Reads and
// writes cost on-chip register cycles regardless of data-cache state.
type RegisterFile struct {
	meter *cpu.Meter
	regs  [HardwareQueueRegisters]uint32
}

// NewRegisterFile returns a register file charging meter (nil allowed).
func NewRegisterFile(meter *cpu.Meter) *RegisterFile {
	return &RegisterFile{meter: meter}
}

// ReadWord implements WordStore.
func (r *RegisterFile) ReadWord(i int) uint32 {
	r.meter.RegRead(1)
	return r.regs[i]
}

// WriteWord implements WordStore.
func (r *RegisterFile) WriteWord(i int, v uint32) {
	r.meter.RegWrite(1)
	r.regs[i] = v
}

// Cap implements WordStore.
func (r *RegisterFile) Cap() int { return HardwareQueueRegisters }

// Kind implements WordStore.
func (r *RegisterFile) Kind() string { return "hw-registers" }

// DRAMStore keeps descriptor words in pinned local card memory; accesses
// charge memory-read/write cost and therefore feel the data-cache state.
type DRAMStore struct {
	meter *cpu.Meter
	words []uint32
	kind  string
}

// NewDRAMStore returns a store of n words in pinned card memory.
func NewDRAMStore(meter *cpu.Meter, n int) *DRAMStore {
	return &DRAMStore{meter: meter, words: make([]uint32, n), kind: "pinned-dram"}
}

// ReadWord implements WordStore.
func (d *DRAMStore) ReadWord(i int) uint32 {
	d.meter.MemRead(1)
	return d.words[i]
}

// WriteWord implements WordStore.
func (d *DRAMStore) WriteWord(i int, v uint32) {
	d.meter.MemWrite(1)
	d.words[i] = v
}

// Cap implements WordStore.
func (d *DRAMStore) Cap() int { return len(d.words) }

// Kind implements WordStore.
func (d *DRAMStore) Kind() string { return d.kind }

// Region is a window [base, base+n) of an underlying WordStore, letting
// several per-stream descriptor rings share one register file or one pinned
// DRAM array.
type Region struct {
	Store WordStore
	Base  int
	N     int
}

// NewRegion returns the window [base, base+n) of s, panicking if the range
// exceeds the store.
func NewRegion(s WordStore, base, n int) *Region {
	if base < 0 || n < 0 || base+n > s.Cap() {
		panic(fmt.Sprintf("mem: region [%d,%d) exceeds store cap %d", base, base+n, s.Cap()))
	}
	return &Region{Store: s, Base: base, N: n}
}

// ReadWord implements WordStore.
func (r *Region) ReadWord(i int) uint32 { return r.Store.ReadWord(r.Base + i) }

// WriteWord implements WordStore.
func (r *Region) WriteWord(i int, v uint32) { r.Store.WriteWord(r.Base+i, v) }

// Cap implements WordStore.
func (r *Region) Cap() int { return r.N }

// Kind implements WordStore.
func (r *Region) Kind() string { return r.Store.Kind() }

// Addr identifies an allocation in card memory.
type Addr uint32

// Observer is notified after every successful allocation and every free.
// The overload budget accountant mirrors physical frame-buffer usage through
// this hook without Memory having to know about budgets.
type Observer interface {
	OnAlloc(n int64)
	OnFree(n int64)
}

// Memory is a card's local DRAM allocator. The paper keeps a single copy of
// each frame in NI memory and manipulates addresses (§3.1.2); Memory is the
// accounting for that: allocations fail once the installed size is exceeded.
type Memory struct {
	size   int64
	used   int64
	peak   int64
	next   Addr
	blocks map[Addr]int64
	obs    Observer
}

// NewMemory returns an allocator over size bytes of card memory.
func NewMemory(size int64) *Memory {
	return &Memory{size: size, next: 1, blocks: make(map[Addr]int64)}
}

// Alloc reserves n bytes, returning its address, or ErrOutOfMemory.
func (m *Memory) Alloc(n int64) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("mem: negative allocation %d", n)
	}
	if m.used+n > m.size {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, n, m.size-m.used)
	}
	a := m.next
	m.next++
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	m.blocks[a] = n
	if m.obs != nil {
		m.obs.OnAlloc(n)
	}
	return a, nil
}

// Free releases the allocation at a. Freeing an unknown address panics: it
// is always a double-free bug in the caller.
func (m *Memory) Free(a Addr) {
	n, ok := m.blocks[a]
	if !ok {
		panic(fmt.Sprintf("mem: free of unknown addr %d", a))
	}
	delete(m.blocks, a)
	m.used -= n
	if m.obs != nil {
		m.obs.OnFree(n)
	}
}

// Observe installs obs (nil detaches). At most one observer is supported;
// allocations made before attachment are not replayed.
func (m *Memory) Observe(obs Observer) { m.obs = obs }

// Used returns currently allocated bytes.
func (m *Memory) Used() int64 { return m.used }

// Peak returns the high-water mark of allocated bytes.
func (m *Memory) Peak() int64 { return m.peak }

// Free bytes remaining.
func (m *Memory) Avail() int64 { return m.size - m.used }

// Size returns the installed memory size.
func (m *Memory) Size() int64 { return m.size }
