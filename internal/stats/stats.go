// Package stats collects the measurements the paper reports: per-stream
// bandwidth over time windows (Figures 7 and 9), queuing delay per frame
// sent (Figures 8 and 10), CPU utilization over time (Figure 6), and simple
// latency summaries for the microbenchmark tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Point is one (time, value) sample of a time series.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point

	// NonFinite counts samples rejected by Add because they were NaN or
	// ±Inf — one bad division upstream would otherwise poison every
	// aggregate (Mean, Max, CSV) of the series.
	NonFinite int64
}

// Add appends a sample. NaN and ±Inf values are rejected (counted in
// NonFinite) so aggregates stay finite.
func (s *Series) Add(at sim.Time, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.NonFinite++
		return
	}
	s.Points = append(s.Points, Point{at, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Max returns the maximum sample value, or 0 if empty.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, p := range s.Points {
		if p.Value > max {
			max = p.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum sample value, or 0 if empty.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, p := range s.Points {
		if p.Value < min {
			min = p.Value
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Mean returns the arithmetic mean of the sample values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// MeanAfter returns the mean of samples at or after t — the "settling"
// value the paper quotes for bandwidth curves.
func (s *Series) MeanAfter(t sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.At >= t {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAfter returns the maximum of samples at or after t.
func (s *Series) MaxAfter(t sim.Time) float64 {
	max := math.Inf(-1)
	for _, p := range s.Points {
		if p.At >= t && p.Value > max {
			max = p.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// CSV renders the series as "time_ms,value" lines for plotting.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time_ms,%s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.3f,%.3f\n", p.At.Milliseconds(), p.Value)
	}
	return b.String()
}

// BandwidthMeter converts per-frame byte deliveries into a bandwidth-vs-time
// series, sampling every Window like the paper's per-interval bandwidth
// plots (bps on the y axis, ms on the x axis).
type BandwidthMeter struct {
	Window sim.Time
	Series Series

	winStart sim.Time
	winBytes int64
}

// NewBandwidthMeter returns a meter that emits one bps sample per window.
func NewBandwidthMeter(name string, window sim.Time) *BandwidthMeter {
	return &BandwidthMeter{Window: window, Series: Series{Name: name}}
}

// Deliver records n bytes delivered at time at. Windows with no deliveries
// emit zero samples so stalls are visible in the curve.
func (m *BandwidthMeter) Deliver(at sim.Time, n int) {
	for at >= m.winStart+m.Window {
		m.flush()
	}
	m.winBytes += int64(n)
}

// FlushUntil emits samples for all complete windows up to t.
func (m *BandwidthMeter) FlushUntil(t sim.Time) {
	for t >= m.winStart+m.Window {
		m.flush()
	}
}

func (m *BandwidthMeter) flush() {
	end := m.winStart + m.Window
	bps := float64(m.winBytes*8) / m.Window.Seconds()
	m.Series.Add(end, bps)
	m.winStart = end
	m.winBytes = 0
}

// DelayTracker records the queuing delay of each frame sent, indexed by
// send order — the x axis of Figures 8 and 10 ("Frame# Sent").
type DelayTracker struct {
	Name   string
	Delays []sim.Time
}

// Record notes that the n-th sent frame waited d between enqueue and
// dispatch.
func (t *DelayTracker) Record(d sim.Time) { t.Delays = append(t.Delays, d) }

// Max returns the largest recorded delay.
func (t *DelayTracker) Max() sim.Time {
	var max sim.Time
	for _, d := range t.Delays {
		if d > max {
			max = d
		}
	}
	return max
}

// Mean returns the mean recorded delay.
func (t *DelayTracker) Mean() sim.Time {
	if len(t.Delays) == 0 {
		return 0
	}
	var sum sim.Time
	for _, d := range t.Delays {
		sum += d
	}
	return sum / sim.Time(len(t.Delays))
}

// CSV renders "frame,delay_ms" lines.
func (t *DelayTracker) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame,%s_delay_ms\n", t.Name)
	for i, d := range t.Delays {
		fmt.Fprintf(&b, "%d,%.3f\n", i+1, d.Milliseconds())
	}
	return b.String()
}

// Histogram buckets sim.Time samples into fixed-width bins for
// distribution reports (delay-jitter spreads, latency tails).
type Histogram struct {
	Width   sim.Time
	Counts  []int64
	N       int64
	Overmax int64 // samples beyond the last bin
}

// NewHistogram returns a histogram of `bins` buckets of the given width.
func NewHistogram(width sim.Time, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Width: width, Counts: make([]int64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v sim.Time) {
	h.N++
	if v < 0 {
		v = 0
	}
	i := int(v / h.Width)
	if i >= len(h.Counts) {
		h.Overmax++
		return
	}
	h.Counts[i]++
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) at bucket
// resolution; samples beyond the last bin return the histogram's top edge.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.N == 0 {
		return 0
	}
	target := int64(q * float64(h.N))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return sim.Time(i+1) * h.Width
		}
	}
	return sim.Time(len(h.Counts)) * h.Width
}

// String renders a compact text bar chart of the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	max := int64(1)
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(40 * c / max)
		fmt.Fprintf(&b, "%12v %6d %s"+"\n", sim.Time(i)*h.Width, c, strings.Repeat("#", bar))
	}
	if h.Overmax > 0 {
		fmt.Fprintf(&b, "%12s %6d (beyond range)"+"\n", ">max", h.Overmax)
	}
	return b.String()
}

// Summary holds order statistics of a latency sample set, for the
// microbenchmark tables.
type Summary struct {
	N                   int
	Mean, Min, Max, P50 sim.Time
	Total               sim.Time
}

// Summarize computes a Summary over samples. It does not modify its input.
func Summarize(samples []sim.Time) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total sim.Time
	for _, s := range sorted {
		total += s
	}
	return Summary{
		N:     len(sorted),
		Mean:  total / sim.Time(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   sorted[len(sorted)/2],
		Total: total,
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v min=%v max=%v total=%v",
		s.N, s.Mean, s.P50, s.Min, s.Max, s.Total)
}
