package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(10, 1)
	s.Add(20, 5)
	s.Add(30, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Last() != 3 {
		t.Errorf("Last = %v", s.Last())
	}
	if s.Max() != 5 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Min() != 1 {
		t.Errorf("Min = %v", s.Min())
	}
	if got := s.Mean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSeriesAfterWindows(t *testing.T) {
	var s Series
	s.Add(10, 100)
	s.Add(20, 200)
	s.Add(30, 400)
	if got := s.MeanAfter(20); math.Abs(got-300) > 1e-9 {
		t.Errorf("MeanAfter(20) = %v, want 300", got)
	}
	if got := s.MaxAfter(25); got != 400 {
		t.Errorf("MaxAfter(25) = %v, want 400", got)
	}
	if got := s.MeanAfter(100); got != 0 {
		t.Errorf("MeanAfter past end = %v, want 0", got)
	}
	if got := s.MaxAfter(100); got != 0 {
		t.Errorf("MaxAfter past end = %v, want 0", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "bw"}
	s.Add(2*sim.Millisecond, 42)
	got := s.CSV()
	if !strings.HasPrefix(got, "time_ms,bw\n") {
		t.Errorf("CSV header: %q", got)
	}
	if !strings.Contains(got, "2.000,42.000") {
		t.Errorf("CSV body: %q", got)
	}
}

func TestBandwidthMeterWindows(t *testing.T) {
	m := NewBandwidthMeter("s1", sim.Second)
	// 1250 bytes in window 1 → 10000 bps; nothing in window 2.
	m.Deliver(100*sim.Millisecond, 1000)
	m.Deliver(900*sim.Millisecond, 250)
	m.FlushUntil(2 * sim.Second)
	if m.Series.Len() != 2 {
		t.Fatalf("got %d samples, want 2", m.Series.Len())
	}
	if got := m.Series.Points[0].Value; math.Abs(got-10000) > 1e-6 {
		t.Errorf("window 1 = %v bps, want 10000", got)
	}
	if got := m.Series.Points[1].Value; got != 0 {
		t.Errorf("empty window = %v bps, want 0", got)
	}
}

func TestBandwidthMeterLateDeliveryOpensWindows(t *testing.T) {
	m := NewBandwidthMeter("s1", sim.Second)
	m.Deliver(3500*sim.Millisecond, 125)
	m.FlushUntil(4 * sim.Second)
	if m.Series.Len() != 4 {
		t.Fatalf("got %d samples, want 4", m.Series.Len())
	}
	for i := 0; i < 3; i++ {
		if m.Series.Points[i].Value != 0 {
			t.Errorf("window %d = %v, want 0", i, m.Series.Points[i].Value)
		}
	}
	if got := m.Series.Points[3].Value; math.Abs(got-1000) > 1e-6 {
		t.Errorf("window 4 = %v bps, want 1000", got)
	}
}

func TestDelayTracker(t *testing.T) {
	var d DelayTracker
	d.Name = "s1"
	if d.Max() != 0 || d.Mean() != 0 {
		t.Fatal("empty tracker should report zero")
	}
	d.Record(10 * sim.Millisecond)
	d.Record(30 * sim.Millisecond)
	d.Record(20 * sim.Millisecond)
	if got := d.Max(); got != 30*sim.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := d.Mean(); got != 20*sim.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if !strings.Contains(d.CSV(), "2,30.000") {
		t.Errorf("CSV: %q", d.CSV())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]sim.Time{30, 10, 20, 40})
	if s.N != 4 || s.Min != 10 || s.Max != 40 || s.Mean != 25 || s.Total != 100 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != 30 { // index 2 of sorted [10 20 30 40]
		t.Errorf("P50 = %v", s.P50)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summarize should be zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []sim.Time{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// Property: total bytes delivered equals sum over windows of bps*window.
func TestBandwidthMeterConservesBytes(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewBandwidthMeter("x", 100*sim.Millisecond)
		var total int64
		at := sim.Time(0)
		for _, sz := range sizes {
			at += sim.Time(sz) * sim.Microsecond
			m.Deliver(at, int(sz))
			total += int64(sz)
		}
		m.FlushUntil(at + 100*sim.Millisecond)
		var sum float64
		for _, p := range m.Series.Points {
			sum += p.Value * (100 * sim.Millisecond).Seconds() / 8
		}
		return math.Abs(sum-float64(total)) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize mean is between min and max.
func TestSummaryBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]sim.Time, len(raw))
		for i, v := range raw {
			in[i] = sim.Time(v)
		}
		s := Summarize(in)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Min <= s.P50 && s.P50 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRejectsNonFinite(t *testing.T) {
	var s Series
	s.Add(10, 1)
	s.Add(20, math.NaN())
	s.Add(30, math.Inf(1))
	s.Add(40, math.Inf(-1))
	s.Add(50, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (non-finite samples rejected)", s.Len())
	}
	if s.NonFinite != 3 {
		t.Errorf("NonFinite = %d, want 3", s.NonFinite)
	}
	if got := s.Mean(); math.IsNaN(got) || math.Abs(got-2) > 1e-9 {
		t.Errorf("Mean = %v, want 2 (unpoisoned)", got)
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v, want 3/1", s.Max(), s.Min())
	}
}

func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Add(10, 7)
	if s.Mean() != 7 || s.Max() != 7 || s.Min() != 7 || s.Last() != 7 {
		t.Errorf("single-sample aggregates: mean=%v max=%v min=%v last=%v, all want 7",
			s.Mean(), s.Max(), s.Min(), s.Last())
	}
	if s.MeanAfter(10) != 7 || s.MeanAfter(11) != 0 {
		t.Errorf("MeanAfter = %v / %v, want 7 / 0", s.MeanAfter(10), s.MeanAfter(11))
	}
	if s.MaxAfter(10) != 7 || s.MaxAfter(11) != 0 {
		t.Errorf("MaxAfter = %v / %v, want 7 / 0", s.MaxAfter(10), s.MaxAfter(11))
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	got := Summarize([]sim.Time{42})
	if got.N != 1 || got.Mean != 42 || got.Min != 42 || got.Max != 42 || got.P50 != 42 || got.Total != 42 {
		t.Errorf("Summarize([42]) = %+v", got)
	}
}

func TestDelayTrackerEmpty(t *testing.T) {
	var d DelayTracker
	if d.Max() != 0 || d.Mean() != 0 {
		t.Errorf("empty tracker: max=%v mean=%v, want 0/0", d.Max(), d.Mean())
	}
}
