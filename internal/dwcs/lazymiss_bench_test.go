package dwcs

import (
	"fmt"
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// BenchmarkMissScan measures steady-state decision rate with the lazy
// watermark against the eager per-decision walk (the ablation the lazy miss
// scan is justified by). The Heaps selector keeps selection at O(log n) so
// the miss walk dominates; no deadlines pass, the watermark's best case and
// the eager walk's worst.
func BenchmarkMissScan(b *testing.B) {
	for _, streams := range []int{64, 512, 4096} {
		for _, mode := range []struct {
			name  string
			eager bool
		}{{"lazy", false}, {"eager", true}} {
			b.Run(fmt.Sprintf("%s/%d", mode.name, streams), func(b *testing.B) {
				clk := &testClock{}
				s := New(Config{WorkConserving: true, Selector: Heaps, Now: clk.Now})
				s.eagerMissScan = mode.eager
				for id := 0; id < streams; id++ {
					if err := s.AddStream(StreamSpec{
						ID:     id,
						Period: sim.Second,
						Loss:   fixed.New(int64(id%3), int64(id%3)+2),
						Lossy:  true,
						BufCap: 8,
					}); err != nil {
						b.Fatal(err)
					}
					for j := 0; j < 4; j++ {
						if err := s.Enqueue(id, Packet{Bytes: 1000}); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := s.Schedule()
					if d.Packet == nil {
						b.Fatal("ran dry")
					}
					if err := s.Enqueue(d.Packet.StreamID, Packet{Bytes: 1000}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				perSec := float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(perSec, "decisions/s")
			})
		}
	}
}
