package dwcs

import (
	"errors"
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

func TestPauseExcludesStreamFromService(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(0, 1))) // would win every time
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, 1, Packet{})
		mustEnqueue(t, s, 2, Packet{})
	}
	if err := s.Pause(1); err != nil {
		t.Fatal(err)
	}
	if !s.Paused(1) || s.Paused(2) {
		t.Fatal("pause state wrong")
	}
	for i := 0; i < 3; i++ {
		d := s.Schedule()
		if d.Packet == nil || d.Packet.StreamID != 2 {
			t.Fatalf("dispatch %d = %+v, want stream 2 only", i, d.Packet)
		}
	}
	if d := s.Schedule(); d.Packet != nil {
		t.Fatal("paused stream dispatched")
	}
}

func TestPausedStreamAccruesNoMisses(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	s.Pause(1)
	clk.now = 10 * sim.Second // far past every deadline
	d := s.Schedule()
	if len(d.Dropped) != 0 {
		t.Fatalf("paused stream dropped %d packets", len(d.Dropped))
	}
	st, _ := s.Stats(1)
	if st.Dropped != 0 || st.Violations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResumeRebasesDeadlines(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, 1, Packet{}) // deadlines 10, 20, 30 ms
	}
	s.Pause(1)
	clk.now = 5 * sim.Second
	if err := s.Resume(1); err != nil {
		t.Fatal(err)
	}
	// Shift = 5 s: deadlines become 5.010, 5.020, 5.030 — nothing late.
	for i := 1; i <= 3; i++ {
		d := s.Schedule()
		if d.Packet == nil {
			t.Fatalf("dispatch %d missing", i)
		}
		want := 5*sim.Second + sim.Time(i)*T
		if d.Packet.Deadline != want {
			t.Fatalf("deadline = %v, want %v", d.Packet.Deadline, want)
		}
		if d.Late || len(d.Dropped) != 0 {
			t.Fatalf("resume produced lateness: %+v", d)
		}
	}
	// The deadline chain continues from the shifted base.
	mustEnqueue(t, s, 1, Packet{})
	if d := s.Schedule(); d.Packet.Deadline != 5*sim.Second+4*T {
		t.Fatalf("post-resume chain deadline = %v", d.Packet.Deadline)
	}
}

func TestPauseResumeIdempotentAndValidated(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	if err := s.Pause(9); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("pause unknown: %v", err)
	}
	if err := s.Resume(9); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("resume unknown: %v", err)
	}
	if err := s.Resume(1); err != nil { // resume of running stream: no-op
		t.Errorf("resume running: %v", err)
	}
	s.Pause(1)
	if err := s.Pause(1); err != nil { // double pause: no-op
		t.Errorf("double pause: %v", err)
	}
	if s.Paused(9) {
		t.Error("unknown stream reported paused")
	}
}

func TestPauseWorksAcrossSelectors(t *testing.T) {
	for _, sel := range []SelectorKind{Scan, Heaps, SortedList} {
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Selector: sel, Now: clk.Now})
		mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(0, 1)))
		mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
		mustEnqueue(t, s, 1, Packet{})
		mustEnqueue(t, s, 2, Packet{})
		s.Pause(1)
		if d := s.Schedule(); d.Packet == nil || d.Packet.StreamID != 2 {
			t.Fatalf("%v: got %+v, want stream 2", sel, d.Packet)
		}
		s.Resume(1)
		if d := s.Schedule(); d.Packet == nil || d.Packet.StreamID != 1 {
			t.Fatalf("%v: after resume got %+v, want stream 1", sel, d.Packet)
		}
	}
}

func TestSnapshot(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustAdd(t, s, spec(2, 20*sim.Millisecond, fixed.New(0, 1)))
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 1, Packet{})
	s.Pause(2)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d streams", len(snap))
	}
	if snap[0].Spec.ID != 1 || snap[0].Queued != 2 || snap[0].WindowX != 1 || snap[0].WindowY != 2 {
		t.Fatalf("stream 1 snapshot = %+v", snap[0])
	}
	if !snap[1].Paused || snap[1].Queued != 0 {
		t.Fatalf("stream 2 snapshot = %+v", snap[1])
	}
}
