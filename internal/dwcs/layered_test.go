package dwcs

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/sim"
)

// TestLayeredMPEGProtectsReferenceFrames maps a clip's I/P/B frames onto
// three DWCS streams with decreasing protection and overloads the service:
// under DWCS's window constraints the B layer absorbs the losses, the P
// layer loses at most its tolerance, and the I layer loses nothing.
func TestLayeredMPEGProtectsReferenceFrames(t *testing.T) {
	clip := mpeg.GenerateDefault()
	iFrames, pFrames, bFrames := clip.ByType()
	if len(iFrames) == 0 || len(pFrames) == 0 || len(bFrames) == 0 {
		t.Fatal("clip missing frame types")
	}

	clk := &testClock{}
	// Paced with a full period of eligibility, like the qos guarantee test.
	T := 10 * sim.Millisecond
	s := New(Config{EligibleEarly: T, Now: clk.Now})
	layers := []struct {
		id     int
		frames []mpeg.Frame
		loss   fixed.Frac
		lossy  bool
	}{
		{1, iFrames, fixed.New(0, 1), false}, // I: never lose, never drop
		{2, pFrames, fixed.New(1, 4), true},  // P: ≤1 of 4
		{3, bFrames, fixed.New(1, 2), true},  // B: ≤1 of 2
	}
	for _, l := range layers {
		mustAdd(t, s, StreamSpec{ID: l.id, Period: T, Loss: l.loss, Lossy: l.lossy, BufCap: 256})
	}

	// Keep all three layers backlogged; service one packet per 4 ms
	// (250/s) against 300/s demand — a 1.2× overload that stays above the
	// layers' guaranteed minimum of 225/s (I:100% + P:75% + B:50%), so the
	// window constraints are feasible and must hold.
	cursor := map[int]int{1: 0, 2: 0, 3: 0}
	for clk.now < 20*sim.Second {
		for _, l := range layers {
			for s.QueueLen(l.id) < 4 && cursor[l.id] < 1<<30 {
				f := l.frames[cursor[l.id]%len(l.frames)]
				if s.Enqueue(l.id, Packet{Bytes: f.Size, Offset: f.Offset}) != nil {
					break
				}
				cursor[l.id]++
			}
		}
		s.Schedule()
		clk.now += 4 * sim.Millisecond
	}

	iStats, _ := s.Stats(1)
	pStats, _ := s.Stats(2)
	bStats, _ := s.Stats(3)
	if iStats.Dropped != 0 {
		t.Fatalf("I layer dropped %d frames", iStats.Dropped)
	}
	frac := func(st StreamStats) float64 {
		tot := st.Serviced + st.Dropped
		if tot == 0 {
			return 0
		}
		return float64(st.Dropped) / float64(tot)
	}
	fp, fb := frac(pStats), frac(bStats)
	if fb <= fp {
		t.Fatalf("B layer (%.2f) must absorb more loss than P (%.2f)", fb, fp)
	}
	// Window guarantees: P loses at most ~1/4, B at most ~1/2 (small slack
	// for window boundaries).
	if fp > 0.30 {
		t.Fatalf("P layer loss %.2f exceeds its 1/4 tolerance", fp)
	}
	if fb > 0.55 {
		t.Fatalf("B layer loss %.2f exceeds its 1/2 tolerance", fb)
	}
	// I frames were serviced (late is allowed; lost is not).
	if iStats.Serviced == 0 {
		t.Fatal("I layer starved")
	}
}
