package dwcs

import (
	"errors"
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

func TestQueuedBytesTracksEnqueueServiceDrop(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{Bytes: 1000})
	mustEnqueue(t, s, 1, Packet{Bytes: 500})
	if s.QueuedBytes() != 1500 {
		t.Fatalf("queued = %d after enqueues, want 1500", s.QueuedBytes())
	}
	d := s.Schedule()
	if d.Packet == nil {
		t.Fatal("no packet serviced")
	}
	if s.QueuedBytes() != 500 {
		t.Fatalf("queued = %d after service, want 500", s.QueuedBytes())
	}
	// Deadline miss: a lossy drop must release its bytes too.
	clk.now = sim.Second
	s.Schedule()
	if s.QueuedBytes() != 0 {
		t.Fatalf("queued = %d after deadline drop, want 0", s.QueuedBytes())
	}
}

func TestShedTolerantRespectsLossBudget(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	// (1,2): one loss allowed per window of two.
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	for i := 0; i < 4; i++ {
		mustEnqueue(t, s, 1, Packet{Bytes: 100, Seq: int64(i)})
	}
	p, ok := s.ShedTolerant(1)
	if !ok || p.Seq != 0 {
		t.Fatalf("shed = %+v ok=%v, want head packet", p, ok)
	}
	// The window's loss budget is spent: a second shed must refuse rather
	// than push the stream toward a violation.
	if _, ok := s.ShedTolerant(1); ok {
		t.Fatal("shed past the loss budget")
	}
	// Servicing one packet completes the (1,2) window and resets it, which
	// re-arms shedding.
	if d := s.Schedule(); d.Packet == nil {
		t.Fatal("no packet serviced")
	}
	if _, ok := s.ShedTolerant(1); !ok {
		t.Fatal("shed refused after the window reset")
	}
	st, err := s.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 2 || st.Violations != 0 {
		t.Fatalf("shed=%d violations=%d, want 2/0", st.Shed, st.Violations)
	}
}

func TestShedTolerantRefusesLosslessAndUnknown(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, StreamSpec{ID: 1, Period: 10 * sim.Millisecond, BufCap: 8}) // lossless
	mustEnqueue(t, s, 1, Packet{Bytes: 100})
	if _, ok := s.ShedTolerant(1); ok {
		t.Fatal("shed a lossless stream")
	}
	if _, ok := s.ShedTolerant(99); ok {
		t.Fatal("shed an unknown stream")
	}
}

func TestFlushStreamEmptiesRingAndReleasesBytes(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, 1, Packet{Bytes: 100, Seq: int64(i)})
		mustEnqueue(t, s, 2, Packet{Bytes: 200, Seq: int64(i)})
	}
	out, err := s.FlushStream(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("flushed %d packets, want 3", len(out))
	}
	for i, p := range out {
		if p.Seq != int64(i) {
			t.Fatalf("flush order: packet %d has seq %d", i, p.Seq)
		}
	}
	if s.QueuedBytes() != 600 {
		t.Fatalf("queued = %d after flush, want 600 (stream 2 untouched)", s.QueuedBytes())
	}
	// The stream stays registered: it can enqueue again immediately.
	mustEnqueue(t, s, 1, Packet{Bytes: 100})
	if _, err := s.FlushStream(3); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("flush unknown: %v", err)
	}
}
