package dwcs

import (
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// lazyPair drives a lazy and an eager scheduler through the same operations
// and asserts every Schedule decision is identical — the watermark may only
// change what the scan *costs*, never what it decides.
type lazyPair struct {
	t          *testing.T
	clkL, clkE testClock
	lazy       *Scheduler
	eager      *Scheduler
}

func newLazyPair(t *testing.T, mutate ...func(*Config)) *lazyPair {
	p := &lazyPair{t: t}
	mk := func(clk *testClock) *Scheduler {
		cfg := Config{WorkConserving: true, Now: clk.Now}
		for _, m := range mutate {
			m(&cfg)
		}
		return New(cfg)
	}
	p.lazy = mk(&p.clkL)
	p.eager = mk(&p.clkE)
	p.eager.eagerMissScan = true
	return p
}

func (p *lazyPair) add(spec StreamSpec) {
	p.t.Helper()
	mustAdd(p.t, p.lazy, spec)
	mustAdd(p.t, p.eager, spec)
}

func (p *lazyPair) enqueue(id int, pkt Packet) {
	p.t.Helper()
	mustEnqueue(p.t, p.lazy, id, pkt)
	mustEnqueue(p.t, p.eager, id, pkt)
}

func (p *lazyPair) advance(d sim.Time) {
	p.clkL.now += d
	p.clkE.now += d
}

// schedule runs one decision on both schedulers and fails on any divergence.
func (p *lazyPair) schedule() Decision {
	p.t.Helper()
	a, b := p.lazy.Schedule(), p.eager.Schedule()
	if (a.Packet == nil) != (b.Packet == nil) || len(a.Dropped) != len(b.Dropped) || a.Late != b.Late {
		p.t.Fatalf("lazy/eager diverged: %+v vs %+v", a, b)
	}
	if a.Packet != nil && (a.Packet.StreamID != b.Packet.StreamID || a.Packet.Seq != b.Packet.Seq) {
		p.t.Fatalf("dispatched different packets: %+v vs %+v", a.Packet, b.Packet)
	}
	for i := range a.Dropped {
		if a.Dropped[i].StreamID != b.Dropped[i].StreamID || a.Dropped[i].Seq != b.Dropped[i].Seq {
			p.t.Fatalf("dropped different packets at %d: %+v vs %+v", i, a.Dropped[i], b.Dropped[i])
		}
	}
	return a
}

// check compares per-stream outcomes after a scenario.
func (p *lazyPair) check(ids ...int) {
	p.t.Helper()
	for _, id := range ids {
		sa, _ := p.lazy.Stats(id)
		sb, _ := p.eager.Stats(id)
		if sa != sb {
			p.t.Errorf("stream %d stats diverged: lazy %+v eager %+v", id, sa, sb)
		}
		xa, ya, _ := p.lazy.Window(id)
		xb, yb, _ := p.eager.Window(id)
		if xa != xb || ya != yb {
			p.t.Errorf("stream %d window diverged: %d/%d vs %d/%d", id, xa, ya, xb, yb)
		}
	}
}

func TestLazyMissScanEnqueueTightensWatermark(t *testing.T) {
	// Stream 2's first packet lands on an empty ring with a deadline earlier
	// than the established watermark; the O(1) tighten must make the next
	// decision notice its miss exactly when the eager scan does.
	p := newLazyPair(t)
	p.add(spec(1, 100*sim.Millisecond, fixed.New(1, 2)))
	p.add(spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
	p.enqueue(1, Packet{Bytes: 100}) // deadline 100ms → watermark 100ms
	p.schedule()                     // establishes the watermark
	p.enqueue(1, Packet{Bytes: 100})
	p.enqueue(2, Packet{Bytes: 100}) // empty ring, deadline 10ms < watermark
	p.advance(20 * sim.Millisecond)  // past stream 2's deadline only
	d := p.schedule()
	if len(d.Dropped) != 1 || d.Dropped[0].StreamID != 2 {
		t.Fatalf("expected stream 2's head dropped, got %+v", d)
	}
	p.check(1, 2)
}

func TestLazyMissScanAcrossPauseResume(t *testing.T) {
	p := newLazyPair(t)
	p.add(spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	p.add(spec(2, 50*sim.Millisecond, fixed.New(0, 1)))
	for i := 0; i < 4; i++ {
		p.enqueue(1, Packet{Bytes: 10})
		p.enqueue(2, Packet{Bytes: 10})
	}
	p.schedule()
	p.lazy.Pause(1)
	p.eager.Pause(1)
	p.advance(60 * sim.Millisecond) // stream 1 is paused and must not miss
	p.schedule()
	p.lazy.Resume(1)
	p.eager.Resume(1)
	p.advance(5 * sim.Millisecond)
	for i := 0; i < 8; i++ {
		p.schedule()
	}
	p.check(1, 2)
}

func TestLazyMissScanAcrossReconfigure(t *testing.T) {
	p := newLazyPair(t)
	p.add(spec(1, 100*sim.Millisecond, fixed.New(2, 3)))
	p.enqueue(1, Packet{Bytes: 10})
	p.schedule() // watermark 100ms, head dispatched
	p.lazy.Reconfigure(1, 5*sim.Millisecond, fixed.New(1, 4))
	p.eager.Reconfigure(1, 5*sim.Millisecond, fixed.New(1, 4))
	p.enqueue(1, Packet{Bytes: 10})
	p.advance(120 * sim.Millisecond)
	for i := 0; i < 4; i++ {
		p.schedule()
	}
	p.check(1)
}

func TestLazyMissScanWithDropCap(t *testing.T) {
	// A drop-capped scan stops mid-walk; the truncated watermark must not
	// mask the remaining misses on later decisions.
	p := newLazyPair(t, func(c *Config) { c.MaxDropsPerDecision = 1 })
	for id := 1; id <= 4; id++ {
		p.add(spec(id, 10*sim.Millisecond, fixed.New(2, 2)))
		p.enqueue(id, Packet{Bytes: 10})
	}
	p.schedule() // establishes watermark, dispatches one head
	p.advance(50 * sim.Millisecond)
	drops := 0
	for i := 0; i < 8; i++ {
		d := p.schedule()
		drops += len(d.Dropped)
	}
	if drops == 0 {
		t.Fatal("expected capped drops across decisions")
	}
	p.check(1, 2, 3, 4)
}

func TestLazyMissScanAfterMissedLosslessHeadPop(t *testing.T) {
	// A missed lossless head blocks its successors from the miss walk; once
	// it is serviced the successor (also past deadline) must be noticed even
	// though the watermark predates it.
	p := newLazyPair(t)
	p.add(StreamSpec{ID: 1, Period: 10 * sim.Millisecond, Loss: fixed.New(1, 2), Lossy: false, BufCap: 8})
	p.enqueue(1, Packet{Bytes: 10})
	p.enqueue(1, Packet{Bytes: 10})
	p.schedule() // dispatches head at t=0; watermark from remaining head
	p.enqueue(1, Packet{Bytes: 10})
	p.advance(100 * sim.Millisecond) // both queued packets now missed
	d := p.schedule()                // services the missed head (late)
	if d.Packet == nil || !d.Late {
		t.Fatalf("expected late lossless dispatch, got %+v", d)
	}
	p.schedule() // successor's miss must be charged here
	p.check(1)
}

// Property: for any randomized workload (enqueues, clock advances,
// pause/resume churn, reconfigures) the lazy scan's dispatch/drop trace is
// identical to the eager scan's.
func TestLazyMissScanMatchesEagerRandom(t *testing.T) {
	for _, prec := range []Precedence{LossFirst, EDFFirst} {
		f := func(seed int64) bool {
			lazy := driveRandom(Scan, prec, seed, 400)
			eager := driveRandom(Scan, prec, seed, 400, func(s *Scheduler) { s.eagerMissScan = true })
			if len(lazy) != len(eager) {
				return false
			}
			for i := range lazy {
				if lazy[i] != eager[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("precedence %v: %v", prec, err)
		}
	}
}

func TestLazyMissScanSkipsWalks(t *testing.T) {
	// With a far-future watermark, repeated decisions at the same instant
	// must not re-walk the streams.
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, sim.Second, fixed.New(1, 2)))
	for i := 0; i < 16; i++ {
		mustEnqueue(t, s, 1, Packet{Bytes: 10})
	}
	for i := 0; i < 10; i++ {
		s.Schedule()
	}
	if s.TotalDecisions != 10 {
		t.Fatalf("TotalDecisions = %d", s.TotalDecisions)
	}
	if s.MissScans != 1 {
		t.Fatalf("MissScans = %d, want 1 (watermark should skip the other 9)", s.MissScans)
	}
	// The eager ablation walks every time.
	clk2 := &testClock{}
	e := newScheduler(clk2)
	e.eagerMissScan = true
	mustAdd(t, e, spec(1, sim.Second, fixed.New(1, 2)))
	for i := 0; i < 16; i++ {
		mustEnqueue(t, e, 1, Packet{Bytes: 10})
	}
	for i := 0; i < 10; i++ {
		e.Schedule()
	}
	if e.MissScans != 10 {
		t.Fatalf("eager MissScans = %d, want 10", e.MissScans)
	}
}

func TestSnapshotAndStreamIDsAllocOnce(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	for id := 0; id < 32; id++ {
		mustAdd(t, s, spec(id, sim.Second, fixed.New(1, 2)))
	}
	if n := testing.AllocsPerRun(100, func() { s.Snapshot() }); n > 1 {
		t.Errorf("Snapshot allocates %.0f times per call, want ≤1", n)
	}
	if n := testing.AllocsPerRun(100, func() { s.StreamIDs() }); n > 1 {
		t.Errorf("StreamIDs allocates %.0f times per call, want ≤1", n)
	}
}
