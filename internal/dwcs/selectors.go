package dwcs

import (
	"sort"

	"repro/internal/sim"
)

// This file implements the remaining schedule representations §3.1.1 calls
// for ("This allows different data structures to be used for
// experimentation (FCFS circular buffers, sorted lists, heaps or calendar
// queues) with different packet schedule representations"):
//
//   - listSelector — a sorted list of streams ordered by the precedence
//     comparator: O(log n) search + O(n) shift per head change, O(1) best.
//   - calendarSelector — a calendar queue bucketing streams by head-packet
//     deadline. Only valid with the EDFFirst precedence variant, whose
//     primary key *is* the deadline; under LossFirst a calendar cannot find
//     the winner without inspecting every stream.
//
// The FCFS circular buffers are the per-stream rings themselves
// (DequeueFCFS); Scan and Heaps live in dwcs.go/heap.go.

// listSelector keeps streams sorted best-first by the live precedence
// order. Streams with empty rings sort last (same rule as the heap).
type listSelector struct {
	items []*stream
}

// lessStreams orders a before b by the full precedence comparator with
// empty rings last, charging the meter.
func (s *Scheduler) lessStreams(a, b *stream) bool {
	s.meter.Branch(1)
	pa := a.headPacket(s)
	pb := b.headPacket(s)
	switch {
	case pa == nil:
		return false
	case pb == nil:
		return true
	}
	return s.cmpStreams(a, pa, b, pb) < 0
}

func (l *listSelector) insert(s *Scheduler, st *stream) {
	i := sort.Search(len(l.items), func(i int) bool {
		return s.lessStreams(st, l.items[i])
	})
	l.items = append(l.items, nil)
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = st
	// Shifting list entries costs memory traffic proportional to the tail.
	s.meter.MemWrite(len(l.items) - i)
	for j := i; j < len(l.items); j++ {
		l.items[j].listIdx = j
	}
	s.meter.Int(len(l.items) - i)
}

func (l *listSelector) removeAt(s *Scheduler, i int) {
	copy(l.items[i:], l.items[i+1:])
	l.items = l.items[:len(l.items)-1]
	s.meter.MemWrite(len(l.items) - i + 1)
	for j := i; j < len(l.items); j++ {
		l.items[j].listIdx = j
	}
	s.meter.Int(len(l.items) - i + 1)
}

func (l *listSelector) add(s *Scheduler, st *stream) {
	l.insert(s, st)
}

func (l *listSelector) remove(s *Scheduler, st *stream) {
	l.removeAt(s, st.listIdx)
	st.listIdx = -1
}

func (l *listSelector) fix(s *Scheduler, st *stream) {
	if st.listIdx < 0 {
		l.insert(s, st)
		return
	}
	l.removeAt(s, st.listIdx)
	l.insert(s, st)
}

func (l *listSelector) best(s *Scheduler) (*stream, *Packet) {
	if len(l.items) == 0 {
		return nil, nil
	}
	st := l.items[0]
	p := st.headPacket(s)
	if p == nil {
		return nil, nil
	}
	return st, p
}

// calendarWidth is the deadline span of one calendar bucket.
const calendarWidth = 10 * sim.Millisecond

// calendarSelector buckets streams by floor(headDeadline / width). All
// deadlines in bucket k precede all deadlines in bucket k+1, so under
// EDFFirst the winner lives in the earliest non-empty bucket; the full
// comparator breaks ties within it.
type calendarSelector struct {
	buckets map[int64][]*stream
	keys    []int64 // sorted active bucket keys
}

func newCalendarSelector() *calendarSelector {
	return &calendarSelector{buckets: make(map[int64][]*stream)}
}

func (c *calendarSelector) keyOf(s *Scheduler, st *stream) (int64, bool) {
	p := st.headPacket(s)
	if p == nil {
		return 0, false
	}
	return int64(p.Deadline / calendarWidth), true
}

func (c *calendarSelector) addKey(k int64) {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= k })
	if i < len(c.keys) && c.keys[i] == k {
		return
	}
	c.keys = append(c.keys, 0)
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = k
}

func (c *calendarSelector) dropKey(k int64) {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= k })
	if i < len(c.keys) && c.keys[i] == k {
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
	}
}

func (c *calendarSelector) add(s *Scheduler, st *stream) {
	k, ok := c.keyOf(s, st)
	if !ok {
		st.calKey = noBucket
		return
	}
	c.put(s, st, k)
}

func (c *calendarSelector) put(s *Scheduler, st *stream, k int64) {
	c.buckets[k] = append(c.buckets[k], st)
	st.calKey = k
	c.addKey(k)
	s.meter.MemWrite(2) // bucket link update
	s.meter.Int(2)
}

func (c *calendarSelector) take(s *Scheduler, st *stream) {
	if st.calKey == noBucket {
		return
	}
	b := c.buckets[st.calKey]
	for i, o := range b {
		s.meter.Branch(1)
		if o == st {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(c.buckets, st.calKey)
		c.dropKey(st.calKey)
	} else {
		c.buckets[st.calKey] = b
	}
	st.calKey = noBucket
	s.meter.MemWrite(2)
}

func (c *calendarSelector) remove(s *Scheduler, st *stream) { c.take(s, st) }

func (c *calendarSelector) fix(s *Scheduler, st *stream) {
	k, ok := c.keyOf(s, st)
	if st.calKey != noBucket && ok && st.calKey == k {
		return // same bucket: nothing to move
	}
	c.take(s, st)
	if ok {
		c.put(s, st, k)
	}
}

func (c *calendarSelector) best(s *Scheduler) (*stream, *Packet) {
	if len(c.keys) == 0 {
		return nil, nil
	}
	bucket := c.buckets[c.keys[0]]
	var bestSt *stream
	var bestP *Packet
	for _, st := range bucket {
		s.meter.Branch(1)
		p := st.headPacket(s)
		if p == nil {
			continue
		}
		s.meter.Frac(1) // priority encode, as in the scan
		s.meter.MemRead(2)
		s.meter.MemWrite(2)
		if bestSt == nil || s.cmpStreams(st, p, bestSt, bestP) < 0 {
			bestSt, bestP = st, p
		}
	}
	return bestSt, bestP
}

const noBucket = int64(-1 << 62)
