package dwcs

// streamHeap is the Heaps selector: a binary min-heap of streams ordered by
// the full precedence comparator applied to their head-of-line packets —
// the Figure 4(a) structure (the paper splits it into a loss-tolerance heap
// and a deadline heap; because the precedence rules form one lexicographic
// total order, a single heap keyed on that order selects identically).
//
// Streams with empty rings order after every stream with a queued packet,
// so the heap top is the winner whenever any packet is queued. Whenever a
// stream's head or window changes, the scheduler calls fix, which restores
// the heap invariant in O(log n) comparisons; each comparison charges the
// meter exactly as the linear scan's comparisons do.
type streamHeap struct {
	items []*stream
}

// less orders item i before item j, charging the scheduler's meter.
func (h *streamHeap) less(s *Scheduler, i, j int) bool {
	s.meter.Branch(1)
	s.meter.Frac(1) // encode the pair's priority values
	pi := h.items[i].headPacket(s)
	pj := h.items[j].headPacket(s)
	switch {
	case pi == nil:
		return false
	case pj == nil:
		return true
	}
	return s.cmpStreams(h.items[i], pi, h.items[j], pj) < 0
}

func (h *streamHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *streamHeap) up(s *Scheduler, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(s, i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *streamHeap) down(s *Scheduler, i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		min := l
		if r < n && h.less(s, r, l) {
			min = r
		}
		if !h.less(s, min, i) {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// push inserts st.
func (h *streamHeap) push(s *Scheduler, st *stream) {
	st.heapIdx = len(h.items)
	h.items = append(h.items, st)
	h.up(s, st.heapIdx)
}

// fix restores the invariant after st's key (head packet or window)
// changed.
func (h *streamHeap) fix(s *Scheduler, st *stream) {
	if st.heapIdx < 0 {
		h.push(s, st)
		return
	}
	i := st.heapIdx
	h.down(s, i)
	if st.heapIdx == i { // didn't move down; maybe it moves up
		h.up(s, i)
	}
}

// remove deletes st from the heap.
func (h *streamHeap) remove(s *Scheduler, st *stream) {
	i := st.heapIdx
	last := len(h.items) - 1
	if i != last {
		h.swap(i, last)
	}
	h.items = h.items[:last]
	st.heapIdx = -1
	if i < last {
		moved := h.items[i]
		h.down(s, i)
		if moved.heapIdx == i {
			h.up(s, i)
		}
	}
}

// best returns the winning stream and its head packet, or nils when no
// packets are queued anywhere.
func (h *streamHeap) best(s *Scheduler) (*stream, *Packet) {
	if len(h.items) == 0 {
		return nil, nil
	}
	st := h.items[0]
	p := st.headPacket(s)
	if p == nil {
		return nil, nil
	}
	return st, p
}
