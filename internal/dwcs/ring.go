package dwcs

import (
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Ring is the per-stream circular buffer of Figure 4(b): a single-producer,
// single-consumer queue of frame-descriptor slots with separate head and
// tail pointers, which "eliminates the need for synchronization between the
// scheduler that selects the next packet for service, and the server that
// queues packets to be scheduled."
//
// The ring stores 32-bit descriptor-table indices ("we store addresses of
// frame descriptors in the circular buffer", §4.2) in a mem.WordStore, so
// the same code runs over pinned card DRAM (Table 2) or the hardware-queue
// register file (Table 3), charging the appropriate operation class.
type Ring struct {
	store mem.WordStore
	meter *cpu.Meter
	head  int // next slot to pop
	tail  int // next slot to fill
	n     int // occupancy
}

// NewRing returns an empty ring over store. Capacity is store.Cap().
func NewRing(store mem.WordStore, meter *cpu.Meter) *Ring {
	if store.Cap() == 0 {
		panic("dwcs: ring store has zero capacity")
	}
	return &Ring{store: store, meter: meter}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return r.store.Cap() }

// Len returns the current occupancy.
func (r *Ring) Len() int { return r.n }

// Push appends a descriptor slot at the tail, returning false if full.
// Cost: tail/occupancy pointer reads, one word write, pointer update.
func (r *Ring) Push(slot uint32) bool {
	r.meter.MemRead(2) // tail + occupancy
	r.meter.Branch(1)
	if r.n == r.store.Cap() {
		return false
	}
	r.store.WriteWord(r.tail, slot)
	r.tail = (r.tail + 1) % r.store.Cap()
	r.n++
	r.meter.MemWrite(2) // tail + occupancy
	r.meter.Int(2)
	return true
}

// Peek returns the head descriptor slot without consuming it.
func (r *Ring) Peek() (uint32, bool) {
	r.meter.MemRead(2) // head + occupancy
	r.meter.Branch(1)
	if r.n == 0 {
		return 0, false
	}
	return r.store.ReadWord(r.head), true
}

// Pop consumes and returns the head descriptor slot.
func (r *Ring) Pop() (uint32, bool) {
	r.meter.MemRead(2)
	r.meter.Branch(1)
	if r.n == 0 {
		return 0, false
	}
	v := r.store.ReadWord(r.head)
	r.head = (r.head + 1) % r.store.Cap()
	r.n--
	r.meter.MemWrite(2) // head + occupancy
	r.meter.Int(2)
	return v, true
}
