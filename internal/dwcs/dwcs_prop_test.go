package dwcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// randomWorkload drives a scheduler through a deterministic pseudo-random
// sequence of enqueues, clock advances, and Schedule calls, returning the
// dispatch/drop trace.
type traceEvent struct {
	kind   byte // 'D' dispatched, 'X' dropped, 'W' wait
	stream int
	seq    int64
}

func driveRandom(sel SelectorKind, prec Precedence, seed int64, steps int, mutate ...func(*Scheduler)) []traceEvent {
	rng := rand.New(rand.NewSource(seed))
	clk := &testClock{}
	s := New(Config{WorkConserving: true, Selector: sel, Precedence: prec, Now: clk.Now})
	for _, m := range mutate {
		m(s)
	}
	nStreams := rng.Intn(5) + 2
	for i := 0; i < nStreams; i++ {
		x := int64(rng.Intn(4))
		y := x + int64(rng.Intn(4)) + 1
		s.AddStream(StreamSpec{
			ID:     i,
			Period: sim.Time(rng.Intn(20)+1) * sim.Millisecond,
			Loss:   fixed.New(x, y),
			Lossy:  rng.Intn(2) == 0,
			BufCap: 8,
		})
	}
	var trace []traceEvent
	for step := 0; step < steps; step++ {
		switch rng.Intn(6) {
		case 0, 1: // enqueue
			id := rng.Intn(nStreams)
			s.Enqueue(id, Packet{Bytes: int64(rng.Intn(1000))}) // full rings just bounce
		case 2: // advance clock
			clk.now += sim.Time(rng.Intn(10)) * sim.Millisecond
		case 3: // pause/resume churn
			id := rng.Intn(nStreams)
			if rng.Intn(2) == 0 {
				s.Pause(id)
			} else {
				s.Resume(id)
			}
		case 4: // reconfigure
			id := rng.Intn(nStreams)
			x := int64(rng.Intn(3))
			s.Reconfigure(id, sim.Time(rng.Intn(20)+1)*sim.Millisecond,
				fixed.New(x, x+int64(rng.Intn(3))+1))
		default: // schedule
			d := s.Schedule()
			for _, p := range d.Dropped {
				trace = append(trace, traceEvent{'X', p.StreamID, p.Seq})
			}
			if d.Packet != nil {
				trace = append(trace, traceEvent{'D', d.Packet.StreamID, d.Packet.Seq})
			}
		}
	}
	// Drain with everything resumed so every selector sees the same tail.
	for i := 0; i < nStreams; i++ {
		s.Resume(i)
	}
	for i := 0; i < steps; i++ {
		d := s.Schedule()
		if d.Packet == nil && len(d.Dropped) == 0 {
			break
		}
		for _, p := range d.Dropped {
			trace = append(trace, traceEvent{'X', p.StreamID, p.Seq})
		}
		if d.Packet != nil {
			trace = append(trace, traceEvent{'D', d.Packet.StreamID, d.Packet.Seq})
		}
	}
	return trace
}

// Property: the Heaps selector dispatches exactly the same sequence as the
// linear Scan for any workload and both precedence variants.
func TestHeapSelectorMatchesScan(t *testing.T) {
	for _, prec := range []Precedence{LossFirst, EDFFirst} {
		f := func(seed int64) bool {
			a := driveRandom(Scan, prec, seed, 300)
			b := driveRandom(Heaps, prec, seed, 300)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("precedence %v: %v", prec, err)
		}
	}
}

// Property: window invariants hold after any operation sequence:
// 0 ≤ x' ≤ x is NOT required (x' counts remaining losses ≤ x), but always
// 0 ≤ x' ≤ y', 1 ≤ y' ≤ y.
func TestWindowInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Now: clk.Now})
		type lim struct{ x, y int64 }
		lims := map[int]lim{}
		for i := 0; i < 4; i++ {
			x := int64(rng.Intn(3))
			y := x + int64(rng.Intn(3)) + 1
			lims[i] = lim{x, y}
			s.AddStream(StreamSpec{ID: i, Period: sim.Millisecond * sim.Time(rng.Intn(5)+1),
				Loss: fixed.New(x, y), Lossy: rng.Intn(2) == 0, BufCap: 8})
		}
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				s.Enqueue(rng.Intn(4), Packet{})
			case 1:
				clk.now += sim.Time(rng.Intn(8)) * sim.Millisecond
			default:
				s.Schedule()
			}
			for i := 0; i < 4; i++ {
				cx, cy, _ := s.Window(i)
				l := lims[i]
				if cx < 0 || cx > cy || cy < 1 || cy > l.y || cx > l.x {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: packet conservation — everything enqueued is eventually
// serviced, dropped, or still queued; nothing is duplicated or lost.
func TestPacketConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Now: clk.Now})
		for i := 0; i < 3; i++ {
			s.AddStream(StreamSpec{ID: i, Period: sim.Millisecond,
				Loss: fixed.New(1, 2), Lossy: i%2 == 0, BufCap: 4})
		}
		for step := 0; step < 300; step++ {
			switch rng.Intn(3) {
			case 0:
				s.Enqueue(rng.Intn(3), Packet{})
			case 1:
				clk.now += sim.Time(rng.Intn(4)) * sim.Millisecond
			default:
				s.Schedule()
			}
		}
		for i := 0; i < 3; i++ {
			st, _ := s.Stats(i)
			if st.Enqueued != st.Serviced+st.Dropped+int64(s.QueueLen(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a zero-loss-tolerance lossless stream is never dropped and all
// its packets are eventually serviced in order.
func TestLosslessZeroToleranceNeverDrops(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Now: clk.Now})
		s.AddStream(StreamSpec{ID: 0, Period: sim.Millisecond, Loss: fixed.New(0, 1), BufCap: 64})
		s.AddStream(StreamSpec{ID: 1, Period: sim.Millisecond, Loss: fixed.New(1, 2), Lossy: true, BufCap: 64})
		var want int64
		var got []int64
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				if s.Enqueue(0, Packet{}) == nil {
					want++
				}
				s.Enqueue(1, Packet{})
			case 1:
				clk.now += sim.Time(rng.Intn(20)) * sim.Millisecond
			default:
				if d := s.Schedule(); d.Packet != nil && d.Packet.StreamID == 0 {
					got = append(got, d.Packet.Seq)
				}
			}
		}
		// Drain.
		for i := 0; i < 1000 && s.Len() > 0; i++ {
			if d := s.Schedule(); d.Packet != nil && d.Packet.StreamID == 0 {
				got = append(got, d.Packet.Seq)
			}
		}
		st, _ := s.Stats(0)
		if st.Dropped != 0 || int64(len(got)) != want {
			return false
		}
		for i, seq := range got {
			if seq != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with two equal-priority backlogged streams, work-conserving
// DWCS shares service approximately equally (fairness, paper §5).
func TestFairShareBetweenEqualStreams(t *testing.T) {
	clk := &testClock{}
	s := New(Config{WorkConserving: true, Now: clk.Now})
	s.AddStream(StreamSpec{ID: 0, Period: 10 * sim.Millisecond, Loss: fixed.New(1, 2), Lossy: true, BufCap: 512})
	s.AddStream(StreamSpec{ID: 1, Period: 10 * sim.Millisecond, Loss: fixed.New(1, 2), Lossy: true, BufCap: 512})
	for i := 0; i < 400; i++ {
		s.Enqueue(0, Packet{})
		s.Enqueue(1, Packet{})
	}
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		d := s.Schedule()
		if d.Packet == nil {
			t.Fatal("starved with backlog")
		}
		counts[d.Packet.StreamID]++
	}
	if diff := counts[0] - counts[1]; diff < -20 || diff > 20 {
		t.Fatalf("unfair split: %v", counts)
	}
}

// Property: the scheduler picks the same stream regardless of stream
// insertion order when keys strictly differ.
func TestSelectionInsertionOrderIndependent(t *testing.T) {
	build := func(order []int) int {
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Now: clk.Now})
		specs := map[int]StreamSpec{
			0: spec(0, 10*sim.Millisecond, fixed.New(1, 2)),
			1: spec(1, 10*sim.Millisecond, fixed.New(1, 4)),
			2: spec(2, 10*sim.Millisecond, fixed.New(1, 8)),
		}
		for _, id := range order {
			s.AddStream(specs[id])
		}
		for _, id := range order {
			s.Enqueue(id, Packet{})
		}
		d := s.Schedule()
		return d.Packet.StreamID
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, p := range perms {
		if got := build(p); got != 2 {
			t.Fatalf("order %v picked stream %d, want 2", p, got)
		}
	}
}
