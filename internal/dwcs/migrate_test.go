package dwcs

import (
	"errors"
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// Drive a stream partway through its loss window, export it, import it into
// a fresh scheduler, and check the window position, frame cursor, deadline
// phase, and stats all survived the hop.
func TestExportImportPreservesWindowAndCursor(t *testing.T) {
	clk := &testClock{}
	src := newScheduler(clk)
	T := 10 * sim.Millisecond
	mustAdd(t, src, spec(1, T, fixed.New(2, 4)))
	for i := 0; i < 2; i++ {
		mustEnqueue(t, src, 1, Packet{Bytes: 100})
	}
	// Service one ((2,4)→(2,3)), then miss one ((2,3)→(1,2)).
	if d := src.Schedule(); d.Packet == nil {
		t.Fatal("no dispatch")
	}
	clk.now = 3 * T // second packet's deadline (20ms) is past
	src.Schedule()

	img, err := src.ExportStream(1)
	if err != nil {
		t.Fatal(err)
	}
	if img.WindowX != 1 || img.WindowY != 2 {
		t.Fatalf("exported window = (%d,%d), want (1,2)", img.WindowX, img.WindowY)
	}
	if img.Seq != 2 {
		t.Fatalf("exported frame cursor = %d, want 2", img.Seq)
	}
	if img.Phase != 2*T {
		t.Fatalf("exported phase = %v, want %v", img.Phase, 2*T)
	}
	if img.Stats.Serviced != 1 || img.Stats.Dropped != 1 {
		t.Fatalf("exported stats = %+v", img.Stats)
	}

	dst := newScheduler(clk)
	if err := dst.ImportStream(img); err != nil {
		t.Fatal(err)
	}
	if cx, cy, _ := dst.Window(1); cx != 1 || cy != 2 {
		t.Fatalf("imported window = (%d,%d), want (1,2)", cx, cy)
	}
	st, _ := dst.Stats(1)
	if st.Serviced != 1 || st.Dropped != 1 {
		t.Fatalf("imported stats = %+v", st)
	}
	// The next enqueue continues the frame sequence; the deadline rebases on
	// max(phase, now) so a late import never manufactures an instant miss.
	mustEnqueue(t, dst, 1, Packet{Bytes: 100})
	d := dst.Schedule()
	if d.Packet == nil || d.Packet.Seq != 2 {
		t.Fatalf("post-import dispatch = %+v, want seq 2", d.Packet)
	}
	if d.Packet.Deadline != 4*T {
		t.Fatalf("post-import deadline = %v, want %v (rebased on now)", d.Packet.Deadline, 4*T)
	}
}

// A corrupt image must not grant loss budget past the stream's declared
// window: coordinates are clamped, not trusted.
func TestImportClampsCorruptWindow(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	img := StreamSnapshot{
		Spec:    spec(7, 10*sim.Millisecond, fixed.New(1, 4)),
		WindowX: 99, WindowY: 99, // claims far more budget than 1/4 allows
	}
	if err := s.ImportStream(img); err != nil {
		t.Fatal(err)
	}
	if cx, cy, _ := s.Window(7); cx != 1 || cy != 4 {
		t.Fatalf("window = (%d,%d), want clamp to declared (1,4)", cx, cy)
	}

	s2 := newScheduler(clk)
	img.WindowX, img.WindowY = -3, 0 // nonsense low values
	if err := s2.ImportStream(img); err != nil {
		t.Fatal(err)
	}
	if cx, cy, _ := s2.Window(7); cx != 0 || cy != 4 {
		t.Fatalf("window = (%d,%d), want (0,4)", cx, cy)
	}
}

func TestImportRejectsDuplicateAndExportUnknown(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	sp := spec(1, 10*sim.Millisecond, fixed.New(1, 2))
	mustAdd(t, s, sp)
	if err := s.ImportStream(StreamSnapshot{Spec: sp}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate import err = %v", err)
	}
	if _, err := s.ExportStream(42); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("unknown export err = %v", err)
	}
}
