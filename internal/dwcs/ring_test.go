package dwcs

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func newTestRing(cap int) *Ring {
	return NewRing(mem.NewDRAMStore(nil, cap), nil)
}

func TestRingFIFO(t *testing.T) {
	r := newTestRing(4)
	for i := uint32(0); i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(9) {
		t.Fatal("push into full ring succeeded")
	}
	for i := uint32(0); i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingWraparound(t *testing.T) {
	r := newTestRing(3)
	for round := uint32(0); round < 10; round++ {
		if !r.Push(round) {
			t.Fatalf("round %d push failed", round)
		}
		v, ok := r.Pop()
		if !ok || v != round {
			t.Fatalf("round %d pop = %d", round, v)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRingPeekDoesNotConsume(t *testing.T) {
	r := newTestRing(2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push(7)
	for i := 0; i < 3; i++ {
		v, ok := r.Peek()
		if !ok || v != 7 {
			t.Fatalf("peek = %d,%v", v, ok)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d after peeks", r.Len())
	}
}

func TestRingZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRing(mem.NewDRAMStore(nil, 0), nil)
}

func TestRingChargesStoreOps(t *testing.T) {
	m := cpu.NewMeter(cpu.I960RD())
	dram := NewRing(mem.NewDRAMStore(m, 8), m)
	dram.Push(1)
	dram.Peek()
	dram.Pop()
	if m.Count(cpu.OpMemRead) == 0 || m.Count(cpu.OpMemWrite) == 0 {
		t.Fatal("DRAM ring should charge memory ops")
	}

	m2 := cpu.NewMeter(cpu.I960RD())
	hw := NewRing(mem.NewRegisterFile(m2), m2)
	hw.Push(1)
	hw.Pop()
	if m2.Count(cpu.OpRegRead) == 0 || m2.Count(cpu.OpRegWrite) == 0 {
		t.Fatal("register ring should charge register ops")
	}
}

// Property: a ring behaves like a bounded FIFO queue.
func TestRingMatchesModelQueue(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		cap := int(capSeed)%16 + 1
		r := newTestRing(cap)
		var model []uint32
		for i, op := range ops {
			if op%2 == 0 { // push
				v := uint32(i)
				got := r.Push(v)
				want := len(model) < cap
				if got != want {
					return false
				}
				if want {
					model = append(model, v)
				}
			} else { // pop
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
