package dwcs

import (
	"errors"
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// testClock is a settable clock for driving the scheduler directly.
type testClock struct{ now sim.Time }

func (c *testClock) Now() sim.Time { return c.now }

func newScheduler(clk *testClock, mutate ...func(*Config)) *Scheduler {
	cfg := Config{WorkConserving: true, Now: clk.Now}
	for _, m := range mutate {
		m(&cfg)
	}
	return New(cfg)
}

func mustAdd(t *testing.T, s *Scheduler, spec StreamSpec) {
	t.Helper()
	if err := s.AddStream(spec); err != nil {
		t.Fatalf("AddStream(%+v): %v", spec, err)
	}
}

func mustEnqueue(t *testing.T, s *Scheduler, id int, p Packet) {
	t.Helper()
	if err := s.Enqueue(id, p); err != nil {
		t.Fatalf("Enqueue(%d): %v", id, err)
	}
}

func spec(id int, period sim.Time, loss fixed.Frac) StreamSpec {
	return StreamSpec{ID: id, Period: period, Loss: loss, Lossy: true, BufCap: 32}
}

func TestAddStreamValidation(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	bad := []StreamSpec{
		{ID: 1, Period: 0, BufCap: 4},
		{ID: 1, Period: -1, BufCap: 4},
		{ID: 1, Period: 1, BufCap: 0},
		{ID: 1, Period: 1, BufCap: 4, Loss: fixed.New(3, 2)},  // x > y
		{ID: 1, Period: 1, BufCap: 4, Loss: fixed.New(-1, 2)}, // negative
	}
	for i, sp := range bad {
		if err := s.AddStream(sp); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %d: err = %v, want ErrBadSpec", i, err)
		}
	}
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	if err := s.AddStream(spec(1, sim.Millisecond, fixed.New(1, 2))); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestZeroLossFracMeansNoLossAllowed(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, StreamSpec{ID: 1, Period: sim.Millisecond, BufCap: 4, Lossy: true})
	x, y, err := s.Window(1)
	if err != nil || x != 0 || y != 1 {
		t.Fatalf("window = %d/%d, %v; want 0/1", x, y, err)
	}
}

func TestEnqueueUnknownStream(t *testing.T) {
	s := newScheduler(&testClock{})
	if err := s.Enqueue(42, Packet{}); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Stats(42); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("Stats err = %v", err)
	}
	if _, _, err := s.Window(42); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("Window err = %v", err)
	}
	if err := s.RemoveStream(42); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("Remove err = %v", err)
	}
}

func TestEnqueueFullRing(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	sp := spec(1, sim.Millisecond, fixed.New(1, 2))
	sp.BufCap = 2
	mustAdd(t, s, sp)
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 1, Packet{})
	if err := s.Enqueue(1, Packet{}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v", err)
	}
	st, _ := s.Stats(1)
	if st.RejectedFull != 1 {
		t.Fatalf("RejectedFull = %d", st.RejectedFull)
	}
	if s.QueueLen(1) != 2 || s.Len() != 2 {
		t.Fatalf("queue len = %d/%d", s.QueueLen(1), s.Len())
	}
}

func TestMaxDescriptorsBound(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk, func(c *Config) { c.MaxDescriptors = 1 })
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	if err := s.Enqueue(1, Packet{}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v", err)
	}
	// Dispatch frees the descriptor; enqueue works again.
	if d := s.Schedule(); d.Packet == nil {
		t.Fatal("no dispatch")
	}
	mustEnqueue(t, s, 1, Packet{})
}

func TestDeadlinesOffsetByPeriod(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, 1, Packet{})
	}
	for i := 1; i <= 3; i++ {
		d := s.Schedule()
		if d.Packet == nil {
			t.Fatalf("dispatch %d missing", i)
		}
		if want := sim.Time(i) * T; d.Packet.Deadline != want {
			t.Fatalf("packet %d deadline = %v, want %v", i, d.Packet.Deadline, want)
		}
	}
}

func TestStarvedStreamDeadlineRestartsFromNow(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	s.Schedule()
	// Producer silent for a long time; next packet must not inherit a stale
	// deadline chain.
	clk.now = sim.Second
	mustEnqueue(t, s, 1, Packet{})
	d := s.Schedule()
	if d.Packet.Deadline != sim.Second+T {
		t.Fatalf("deadline = %v, want %v", d.Packet.Deadline, sim.Second+T)
	}
}

// Precedence: lowest window-constraint first (LossFirst variant).
func TestLossFirstPrefersTightestConstraint(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2))) // 0.5
	mustAdd(t, s, spec(2, sim.Millisecond, fixed.New(1, 4))) // 0.25 — tighter
	mustAdd(t, s, spec(3, sim.Millisecond, fixed.New(0, 1))) // zero — tightest
	for id := 1; id <= 3; id++ {
		mustEnqueue(t, s, id, Packet{})
	}
	want := []int{3, 2, 1}
	for i, id := range want {
		d := s.Schedule()
		if d.Packet == nil || d.Packet.StreamID != id {
			t.Fatalf("dispatch %d = %+v, want stream %d", i, d.Packet, id)
		}
	}
}

func TestEqualLossBreaksTiesEDF(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 20*sim.Millisecond, fixed.New(1, 2)))
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2))) // earlier deadline
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 2, Packet{})
	if d := s.Schedule(); d.Packet.StreamID != 2 {
		t.Fatalf("got stream %d, want 2 (EDF tie-break)", d.Packet.StreamID)
	}
}

func TestZeroConstraintsEqualDeadlinesHighestDenominatorFirst(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(0, 2)))
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(0, 5))) // bigger window of must-send
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 2, Packet{})
	if d := s.Schedule(); d.Packet.StreamID != 2 {
		t.Fatalf("got stream %d, want 2 (highest denominator)", d.Packet.StreamID)
	}
}

func TestEqualNonZeroConstraintsLowestNumeratorFirst(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(2, 4))) // = 1/2, numerator 2
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2))) // = 1/2, numerator 1
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 2, Packet{})
	if d := s.Schedule(); d.Packet.StreamID != 2 {
		t.Fatalf("got stream %d, want 2 (lowest numerator)", d.Packet.StreamID)
	}
}

func TestFCFSFallback(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
	clk.now = 1
	mustEnqueue(t, s, 2, Packet{}) // same deadline base? no — arrives first
	clk.now = 2
	mustEnqueue(t, s, 1, Packet{})
	// Deadlines differ (now+T), so EDF picks stream 2 anyway; to isolate
	// FCFS we need equal deadlines and equal windows, covered by enqueueing
	// at the same instant with same period: both at clk 2.
	s2 := newScheduler(&testClock{})
	mustAdd(t, s2, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustAdd(t, s2, spec(2, 10*sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s2, 2, Packet{})
	mustEnqueue(t, s2, 1, Packet{})
	// Identical loss, deadline, numerator: FCFS by enqueue order — but both
	// enqueued at time 0; order falls back to equal, scan keeps the first
	// best (stream 2 was enqueued first but scan order is insertion order
	// of streams). With equal keys the scan retains stream 1.
	d := s2.Schedule()
	if d.Packet == nil {
		t.Fatal("no dispatch")
	}
}

func TestEDFFirstVariantPrefersEarlierDeadline(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk, func(c *Config) { c.Precedence = EDFFirst })
	// Tight loss but later deadline vs loose loss with earlier deadline.
	mustAdd(t, s, spec(1, 20*sim.Millisecond, fixed.New(0, 1)))
	mustAdd(t, s, spec(2, 10*sim.Millisecond, fixed.New(3, 4)))
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 2, Packet{})
	if d := s.Schedule(); d.Packet.StreamID != 2 {
		t.Fatalf("EDFFirst got stream %d, want 2", d.Packet.StreamID)
	}
	// The LossFirst variant makes the opposite choice.
	s2 := newScheduler(&testClock{})
	mustAdd(t, s2, spec(1, 20*sim.Millisecond, fixed.New(0, 1)))
	mustAdd(t, s2, spec(2, 10*sim.Millisecond, fixed.New(3, 4)))
	mustEnqueue(t, s2, 1, Packet{})
	mustEnqueue(t, s2, 2, Packet{})
	if d := s2.Schedule(); d.Packet.StreamID != 1 {
		t.Fatalf("LossFirst got stream %d, want 1", d.Packet.StreamID)
	}
}

func TestServiceWindowAdjustment(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 3)))
	for i := 0; i < 4; i++ {
		mustEnqueue(t, s, 1, Packet{})
	}
	check := func(wx, wy int64) {
		t.Helper()
		x, y, _ := s.Window(1)
		if x != wx || y != wy {
			t.Fatalf("window = %d/%d, want %d/%d", x, y, wx, wy)
		}
	}
	check(1, 3)
	s.Schedule() // served on time: y'-- → 1/2
	check(1, 2)
	s.Schedule() // y'-- → 1/1 == x' → reset
	check(1, 3)
}

func TestZeroToleranceWindowCyclesOnService(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(0, 2)))
	for i := 0; i < 2; i++ {
		mustEnqueue(t, s, 1, Packet{})
	}
	s.Schedule()
	if x, y, _ := s.Window(1); x != 0 || y != 1 {
		t.Fatalf("window = %d/%d, want 0/1", x, y)
	}
	s.Schedule()
	if x, y, _ := s.Window(1); x != 0 || y != 2 {
		t.Fatalf("window = %d/%d, want reset 0/2", x, y)
	}
}

func TestLossyStreamDropsLatePackets(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(2, 3)))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, 1, Packet{Bytes: 100})
	}
	// Let the first two deadlines (10ms, 20ms) pass.
	clk.now = 25 * sim.Millisecond
	d := s.Schedule()
	if len(d.Dropped) != 2 {
		t.Fatalf("dropped = %d, want 2", len(d.Dropped))
	}
	if d.Packet == nil || d.Packet.Deadline != 3*T {
		t.Fatalf("dispatched %+v, want the 30ms-deadline packet", d.Packet)
	}
	st, _ := s.Stats(1)
	if st.Dropped != 2 || st.Serviced != 1 || st.Violations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Window: two misses consumed the loss budget: 2/3 → 1/2 → 0/1, then
	// service of the last packet resets 0/1 → 0/... reset to 2/3.
	if x, y, _ := s.Window(1); x != 2 || y != 3 {
		t.Fatalf("window = %d/%d, want 2/3 (reset)", x, y)
	}
}

func TestViolationWhenZeroBudgetMisses(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(0, 4)))
	mustEnqueue(t, s, 1, Packet{})
	clk.now = 50 * sim.Millisecond
	d := s.Schedule()
	if len(d.Dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(d.Dropped))
	}
	st, _ := s.Stats(1)
	if st.Violations != 1 {
		t.Fatalf("violations = %d, want 1", st.Violations)
	}
}

func TestLosslessStreamTransmitsLate(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	sp := spec(1, 10*sim.Millisecond, fixed.New(1, 2))
	sp.Lossy = false
	mustAdd(t, s, sp)
	mustEnqueue(t, s, 1, Packet{Bytes: 42})
	clk.now = 50 * sim.Millisecond
	d := s.Schedule()
	if d.Packet == nil || !d.Late {
		t.Fatalf("decision = %+v, want late dispatch", d)
	}
	if len(d.Dropped) != 0 {
		t.Fatal("lossless stream must not drop")
	}
	st, _ := s.Stats(1)
	if st.Late != 1 || st.Dropped != 0 || st.Serviced != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLosslessMissAdjustsWindowOnlyOnce(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	sp := spec(1, 10*sim.Millisecond, fixed.New(2, 4))
	sp.Lossy = false
	mustAdd(t, s, sp)
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 1, Packet{}) // keeps the queue non-empty
	clk.now = 15 * sim.Millisecond
	// Several scheduling passes over the same missed head must not
	// repeatedly debit the window. First Schedule dispatches the late head,
	// so instead use a second stream to win the dispatch.
	mustAdd(t, s, spec(2, sim.Millisecond, fixed.New(0, 1)))
	mustEnqueue(t, s, 2, Packet{})
	s.Schedule() // dispatches stream 2 (zero constraint), processes stream 1 miss
	if x, y, _ := s.Window(1); x != 1 || y != 3 {
		t.Fatalf("window = %d/%d, want 1/3 after single miss", x, y)
	}
	mustEnqueue(t, s, 2, Packet{})
	s.Schedule()
	if x, y, _ := s.Window(1); x != 1 || y != 3 {
		t.Fatalf("window = %d/%d, want 1/3 (no double debit)", x, y)
	}
}

func TestPacedModeWaitsForEligibility(t *testing.T) {
	clk := &testClock{}
	s := New(Config{Now: clk.Now}) // paced (not work-conserving)
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	d := s.Schedule()
	if d.Packet != nil {
		t.Fatal("dispatched before eligibility")
	}
	if d.WaitUntil != T {
		t.Fatalf("WaitUntil = %v, want %v", d.WaitUntil, T)
	}
	clk.now = T
	d = s.Schedule()
	if d.Packet == nil || d.Late {
		t.Fatalf("decision at deadline = %+v, want on-time dispatch", d)
	}
}

func TestPacedModeEligibleEarly(t *testing.T) {
	clk := &testClock{}
	early := 4 * sim.Millisecond
	s := New(Config{Now: clk.Now, EligibleEarly: early})
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	d := s.Schedule()
	if d.WaitUntil != T-early {
		t.Fatalf("WaitUntil = %v, want %v", d.WaitUntil, T-early)
	}
	clk.now = T - early
	if d = s.Schedule(); d.Packet == nil {
		t.Fatal("not dispatched at eligibility")
	}
}

func TestPacedRateMatchesPeriod(t *testing.T) {
	clk := &testClock{}
	s := New(Config{Now: clk.Now})
	T := 10 * sim.Millisecond
	mustAdd(t, s, spec(1, T, fixed.New(1, 2)))
	for i := 0; i < 5; i++ {
		mustEnqueue(t, s, 1, Packet{Bytes: 1000})
	}
	var dispatches []sim.Time
	for len(dispatches) < 5 {
		d := s.Schedule()
		switch {
		case d.Packet != nil:
			dispatches = append(dispatches, clk.now)
		case d.WaitUntil > 0:
			clk.now = d.WaitUntil
		default:
			t.Fatal("scheduler idle with packets queued")
		}
	}
	for i, at := range dispatches {
		if want := sim.Time(i+1) * T; at != want {
			t.Fatalf("dispatch %d at %v, want %v", i, at, want)
		}
	}
}

func TestIdleDecision(t *testing.T) {
	s := newScheduler(&testClock{})
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	d := s.Schedule()
	if !d.Idle() {
		t.Fatalf("decision = %+v, want idle", d)
	}
}

func TestDispatchedPacketSurvivesSlotReuse(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{Bytes: 111})
	d := s.Schedule()
	// Re-using the freed descriptor slot must not mutate the returned packet.
	mustEnqueue(t, s, 1, Packet{Bytes: 999})
	if d.Packet.Bytes != 111 {
		t.Fatalf("dispatched packet mutated: %+v", d.Packet)
	}
}

func TestRemoveStreamFreesDescriptors(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk, func(c *Config) { c.MaxDescriptors = 2 })
	mustAdd(t, s, spec(1, sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{})
	mustEnqueue(t, s, 1, Packet{})
	if err := s.RemoveStream(1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, s, spec(2, sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 2, Packet{})
	mustEnqueue(t, s, 2, Packet{})
	if got := s.StreamIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("StreamIDs = %v", got)
	}
}

func TestQueueLenUnknownStream(t *testing.T) {
	s := newScheduler(&testClock{})
	if s.QueueLen(9) != 0 {
		t.Fatal("unknown stream should report 0")
	}
}

func TestPrecedenceAndSelectorStrings(t *testing.T) {
	if LossFirst.String() != "lossFirst" || EDFFirst.String() != "edfFirst" {
		t.Error("precedence names")
	}
	if Precedence(9).String() != "Precedence(9)" {
		t.Error("unknown precedence name")
	}
	if Scan.String() != "scan" || Heaps.String() != "heaps" {
		t.Error("selector names")
	}
}

func TestReconfigureChangesRateAndWindow(t *testing.T) {
	clk := &testClock{}
	s := newScheduler(clk)
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	mustEnqueue(t, s, 1, Packet{}) // deadline 10ms under the old period
	if err := s.Reconfigure(1, 40*sim.Millisecond, fixed.New(2, 5)); err != nil {
		t.Fatal(err)
	}
	if x, y, _ := s.Window(1); x != 2 || y != 5 {
		t.Fatalf("window = %d/%d, want restarted 2/5", x, y)
	}
	// The queued packet keeps its old deadline; the next one is spaced by
	// the new period from it.
	d1 := s.Schedule()
	if d1.Packet.Deadline != 10*sim.Millisecond {
		t.Fatalf("old packet deadline = %v", d1.Packet.Deadline)
	}
	mustEnqueue(t, s, 1, Packet{})
	d2 := s.Schedule()
	if d2.Packet.Deadline != 50*sim.Millisecond {
		t.Fatalf("new packet deadline = %v, want 50ms", d2.Packet.Deadline)
	}
}

func TestReconfigureValidation(t *testing.T) {
	s := newScheduler(&testClock{})
	mustAdd(t, s, spec(1, 10*sim.Millisecond, fixed.New(1, 2)))
	if err := s.Reconfigure(9, sim.Millisecond, fixed.New(1, 2)); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("unknown stream: %v", err)
	}
	if err := s.Reconfigure(1, 0, fixed.New(1, 2)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero period: %v", err)
	}
	if err := s.Reconfigure(1, sim.Millisecond, fixed.New(5, 2)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad loss: %v", err)
	}
	// Failed reconfigure leaves the stream untouched.
	if x, y, _ := s.Window(1); x != 1 || y != 2 {
		t.Fatalf("window mutated by failed reconfigure: %d/%d", x, y)
	}
}
