// Package dwcs implements Dynamic Window-Constrained Scheduling, the media
// scheduler the paper embeds on the i960 RD network interface (§3).
//
// Each stream i carries two attributes (§3.1.2):
//
//   - Deadline: the latest time a packet can commence service, derived from
//     the maximum allowable time between servicing consecutive packets in
//     the same stream (the stream period T). Successive packets' deadlines
//     are offset by T.
//   - Loss-tolerance x/y: at most x packets may be lost or sent late per
//     window of y consecutive packets.
//
// The scheduler keeps a current window (x', y') per stream, picks the
// highest-precedence head-of-line packet across streams, and adjusts
// windows on every service and every deadline miss. The precedence rules
// and window adjustments follow the DWCS papers the paper builds on
// ([32, 33]; see DESIGN.md §4 for the reconstruction notes). Two precedence
// variants are provided: LossFirst (lowest window-constraint first — the
// variant this paper uses) and EDFFirst (the later RTSS'00 formulation), as
// an ablation.
//
// All descriptor-touching operations charge a cpu.Meter, so the same code
// measured on the simulated i960 RD reproduces the Table 1–3
// microbenchmarks, and measured on a host CPU model reproduces the
// host-scheduler comparison.
package dwcs

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cpu"
	"repro/internal/fixed"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Precedence selects the pairwise packet-ordering variant.
type Precedence int

// Precedence variants.
const (
	// LossFirst orders by lowest window-constraint, breaking ties earliest
	// deadline first — the ordering used by the paper.
	LossFirst Precedence = iota
	// EDFFirst orders earliest deadline first, breaking ties by lowest
	// window-constraint — the later RTSS'00 formulation (ablation).
	EDFFirst
)

// String names the variant.
func (p Precedence) String() string {
	switch p {
	case LossFirst:
		return "lossFirst"
	case EDFFirst:
		return "edfFirst"
	default:
		return fmt.Sprintf("Precedence(%d)", int(p))
	}
}

// SelectorKind chooses the next-packet search structure (§3.1.1 calls for
// an extensible design decoupling scheduling analysis from schedule
// representation).
type SelectorKind int

// Selector kinds (§3.1.1 lists all four schedule representations).
const (
	// Scan linearly walks head-of-line packets — what the embedded i960
	// implementation does ("the scheduler loops through the frame
	// descriptors and picks the eligible descriptor", §4.2.1).
	Scan SelectorKind = iota
	// Heaps maintains the Figure 4(a) priority structure with O(log n)
	// updates per head change.
	Heaps
	// SortedList keeps streams in a precedence-sorted list: O(1) best,
	// O(n) per head change.
	SortedList
	// Calendar buckets streams by head deadline. Valid only with the
	// EDFFirst precedence, whose primary key is the deadline.
	Calendar
)

// String names the selector.
func (k SelectorKind) String() string {
	switch k {
	case Heaps:
		return "heaps"
	case SortedList:
		return "sortedList"
	case Calendar:
		return "calendar"
	default:
		return "scan"
	}
}

// Errors returned by scheduler operations.
var (
	ErrUnknownStream = errors.New("dwcs: unknown stream")
	ErrDuplicateID   = errors.New("dwcs: duplicate stream id")
	ErrBufferFull    = errors.New("dwcs: stream buffer full")
	ErrBadSpec       = errors.New("dwcs: invalid stream spec")
)

// StreamSpec declares one media stream.
type StreamSpec struct {
	ID     int
	Name   string
	Period sim.Time   // deadline offset T between consecutive packets
	Loss   fixed.Frac // loss-tolerance x/y (x of every y packets may be lost/late)
	Lossy  bool       // true: drop late packets; false: transmit them late
	BufCap int        // circular-buffer capacity in descriptors
	// NominalBytes is the stream's declared frame size, used by overload
	// admission to project worst-case resident bytes (0 = undeclared).
	NominalBytes int64
}

func (s StreamSpec) validate() error {
	x, y := s.Loss.Num, s.Loss.Den
	if y == 0 {
		y = 1
	}
	switch {
	case s.Period <= 0:
		return fmt.Errorf("%w: period must be positive", ErrBadSpec)
	case s.BufCap <= 0:
		return fmt.Errorf("%w: buffer capacity must be positive", ErrBadSpec)
	case x < 0 || y < 1 || x > y:
		return fmt.Errorf("%w: loss-tolerance %v must satisfy 0 ≤ x ≤ y", ErrBadSpec, s.Loss)
	}
	return nil
}

// Packet is a frame descriptor queued for service.
type Packet struct {
	StreamID int
	Seq      int64
	Bytes    int64
	Offset   int64 // media-file offset, carried for producers
	Enqueued sim.Time
	Deadline sim.Time
	Payload  any

	missed bool
	slot   uint32
}

// StreamStats counts per-stream scheduler outcomes.
type StreamStats struct {
	Enqueued      int64
	Serviced      int64
	BytesServiced int64
	Dropped       int64
	Late          int64 // serviced after their deadline (lossless streams)
	Violations    int64 // misses while the current window allowed no loss
	RejectedFull  int64 // enqueue attempts bounced off a full ring
	Shed          int64 // packets shed proactively within loss tolerance (overload)
}

// Losses returns the stream's total lost-or-late packets — deadline drops,
// late deliveries, and proactive sheds. This is the numerator the SLO
// monitor rates against the stream's declared (x, y) loss window: the
// window tolerates losses at up to x/y of attempts, so the error budget is
// burned exactly as fast as Losses grows relative to Attempts.
func (st StreamStats) Losses() int64 { return st.Dropped + st.Late + st.Shed }

// Attempts returns serviced plus lost packets — the denominator of the
// loss-ratio SLO.
func (st StreamStats) Attempts() int64 { return st.Serviced + st.Losses() }

type stream struct {
	spec  StreamSpec
	ring  *Ring
	x, y  int64 // original window (losses allowed / window size)
	cx    int64 // losses still allowed in the current window
	cy    int64 // packets remaining in the current window
	last  sim.Time
	seq   int64
	stats StreamStats

	heapIdx int   // position in the heap selector, -1 if absent
	listIdx int   // position in the sorted-list selector, -1 if absent
	calKey  int64 // calendar bucket key, noBucket if absent

	paused   bool
	pausedAt sim.Time
}

// head returns the stream's head-of-line descriptor, charging descriptor
// reads, or nil. Paused streams present no head.
func (st *stream) headPacket(s *Scheduler) *Packet {
	if st.paused {
		return nil
	}
	slot, ok := st.ring.Peek()
	if !ok {
		return nil
	}
	s.meter.MemRead(6) // deadline, window, length, address words of the descriptor
	return &s.table[slot]
}

// Config parameterizes a Scheduler.
type Config struct {
	Precedence Precedence
	Selector   SelectorKind
	// WorkConserving dispatches the best packet immediately (the Table 1–3
	// microbenchmark mode). When false the scheduler paces: a packet
	// becomes eligible EligibleEarly before its deadline.
	WorkConserving bool
	EligibleEarly  sim.Time
	// Meter receives the operation charges; nil disables cost accounting.
	Meter *cpu.Meter
	// Now supplies the scheduler's clock; nil means a constant zero clock.
	Now func() sim.Time
	// DecisionOverhead is charged (in cycles) once per Schedule call —
	// timestamp-counter reads and RTOS task overhead around each decision.
	DecisionOverhead int64
	// NewStore allocates the word store backing each stream's ring; nil
	// uses plain pinned-DRAM stores (Table 2). Supplying register-file
	// regions reproduces Table 3.
	NewStore func(words int) mem.WordStore
	// MaxDescriptors bounds the descriptor table; 0 means unbounded.
	MaxDescriptors int
	// MaxDropsPerDecision bounds how many late packets one Schedule call
	// may retire (0 = unbounded). The paper's host implementation considers
	// one head packet per scheduling pass, so a starved scheduler pays a
	// full pass — including its wait for the CPU — per late frame; that is
	// what stretches Figure 8's queuing delays to ~30 s under 60% load.
	MaxDropsPerDecision int
}

// Decision reports the outcome of one Schedule call.
type Decision struct {
	Packet    *Packet   // dispatched packet, nil if none
	Late      bool      // dispatched after its deadline
	Dropped   []*Packet // lossy-stream packets dropped for missing deadlines
	WaitUntil sim.Time  // paced mode: when the best packet becomes eligible (0 if none queued)
}

// Idle reports whether the scheduler had nothing to do at all.
func (d Decision) Idle() bool {
	return d.Packet == nil && len(d.Dropped) == 0 && d.WaitUntil == 0
}

// Scheduler is a DWCS instance.
type Scheduler struct {
	cfg   Config
	meter *cpu.Meter
	now   func() sim.Time

	streams map[int]*stream
	order   []*stream // insertion order, for deterministic scans
	table   []Packet
	free    []uint32

	sel    selector
	rrNext int // round-robin cursor for DequeueFCFS

	// missWM is the deadline watermark for the lazy miss scan: a lower
	// bound on the earliest deadline any unmissed, unpaused head-of-line
	// packet carries. While now ≤ missWM no head can newly miss, so
	// Schedule skips the O(n) processMisses walk entirely and charges the
	// meter one watermark compare instead of n descriptor reads. The
	// bound is conservative: operations that can only *raise* the true
	// minimum (servicing a head, pausing a stream, removing a stream)
	// leave it alone, operations that can lower it tighten it in O(1)
	// (enqueue onto an empty ring) or invalidate it (resume, reconfigure,
	// servicing an already-missed head, a drop-capped partial scan).
	missWM      sim.Time
	missWMValid bool
	// eagerMissScan restores the unconditional walk — the ablation knob
	// the before/after benchmark flips.
	eagerMissScan bool

	// queuedBytes tracks the payload bytes resident across all rings in
	// O(1), the overload controller's memory-pressure input.
	queuedBytes int64

	// TotalDecisions counts Schedule calls that examined streams.
	TotalDecisions int64

	// MissScans counts Schedule calls that actually walked the streams
	// for deadline misses (ablation/monitoring; with the watermark most
	// calls skip the walk).
	MissScans int64
}

// wmInf is the watermark's "no head can ever miss" sentinel.
const wmInf = sim.Time(math.MaxInt64)

// New returns a Scheduler for cfg.
func New(cfg Config) *Scheduler {
	if cfg.Now == nil {
		cfg.Now = func() sim.Time { return 0 }
	}
	if cfg.NewStore == nil {
		meter := cfg.Meter
		cfg.NewStore = func(words int) mem.WordStore {
			return mem.NewDRAMStore(meter, words)
		}
	}
	s := &Scheduler{
		cfg:     cfg,
		meter:   cfg.Meter,
		now:     cfg.Now,
		streams: make(map[int]*stream),
	}
	switch cfg.Selector {
	case Heaps:
		s.sel = &heapSelector{}
	case SortedList:
		s.sel = &listSelector{}
	case Calendar:
		if cfg.Precedence != EDFFirst {
			panic("dwcs: the calendar selector requires the EDFFirst precedence (its primary key is the deadline)")
		}
		s.sel = newCalendarSelector()
	default:
		s.sel = scanSelector{}
	}
	return s
}

// selector is a schedule representation: it tracks streams and finds the
// precedence winner among head-of-line packets.
type selector interface {
	add(s *Scheduler, st *stream)
	remove(s *Scheduler, st *stream)
	fix(s *Scheduler, st *stream) // st's head or window changed
	best(s *Scheduler) (*stream, *Packet)
}

// scanSelector is the embedded implementation: no auxiliary structure,
// linear walk on every decision.
type scanSelector struct{}

func (scanSelector) add(*Scheduler, *stream)    {}
func (scanSelector) remove(*Scheduler, *stream) {}
func (scanSelector) fix(*Scheduler, *stream)    {}
func (scanSelector) best(s *Scheduler) (*stream, *Packet) {
	var bestSt *stream
	var bestP *Packet
	for _, st := range s.order {
		s.meter.Branch(1)
		p := st.headPacket(s)
		if p == nil {
			continue
		}
		// Encode the stream's priority value from its current window
		// (Figure 4: head packets "encode stream priority values").
		s.meter.Frac(1)
		s.meter.MemRead(2)
		s.meter.MemWrite(2)
		s.meter.Call(1)
		if bestSt == nil || s.cmpStreams(st, p, bestSt, bestP) < 0 {
			bestSt, bestP = st, p
		}
	}
	return bestSt, bestP
}

// heapSelector adapts streamHeap to the selector interface.
type heapSelector struct {
	h streamHeap
}

func (hs *heapSelector) add(s *Scheduler, st *stream) { hs.h.push(s, st) }
func (hs *heapSelector) remove(s *Scheduler, st *stream) {
	if st.heapIdx >= 0 {
		hs.h.remove(s, st)
	}
}
func (hs *heapSelector) fix(s *Scheduler, st *stream)         { hs.h.fix(s, st) }
func (hs *heapSelector) best(s *Scheduler) (*stream, *Packet) { return hs.h.best(s) }

// AddStream registers a stream. The zero-value Loss means 0/1: no losses
// allowed.
func (s *Scheduler) AddStream(spec StreamSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if _, dup := s.streams[spec.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, spec.ID)
	}
	loss := spec.Loss
	y := loss.Den
	if y == 0 {
		y = 1
	}
	st := &stream{
		spec:    spec,
		ring:    NewRing(s.cfg.NewStore(spec.BufCap), s.meter),
		x:       loss.Num,
		y:       y,
		cx:      loss.Num,
		cy:      y,
		heapIdx: -1,
		listIdx: -1,
		calKey:  noBucket,
	}
	s.streams[spec.ID] = st
	s.order = append(s.order, st)
	s.sel.add(s, st)
	return nil
}

// RemoveStream deregisters a stream, discarding any queued packets.
func (s *Scheduler) RemoveStream(id int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	for {
		slot, ok := st.ring.Pop()
		if !ok {
			break
		}
		s.queuedBytes -= s.table[slot].Bytes
		s.freeSlot(slot)
	}
	delete(s.streams, id)
	for i, o := range s.order {
		if o == st {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.sel.remove(s, st)
	return nil
}

// StreamIDs returns the registered stream ids in insertion order.
func (s *Scheduler) StreamIDs() []int {
	ids := make([]int, len(s.order))
	for i, st := range s.order {
		ids[i] = st.spec.ID
	}
	return ids
}

// Stats returns a copy of the stream's statistics.
func (s *Scheduler) Stats(id int) (StreamStats, error) {
	st, ok := s.streams[id]
	if !ok {
		return StreamStats{}, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	return st.stats, nil
}

// Window returns the stream's current window (x', y') for tests and
// monitoring.
func (s *Scheduler) Window(id int) (x, y int64, err error) {
	st, ok := s.streams[id]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	return st.cx, st.cy, nil
}

// QueueLen returns the number of packets queued on stream id (0 if the
// stream is unknown).
func (s *Scheduler) QueueLen(id int) int {
	if st, ok := s.streams[id]; ok {
		return st.ring.Len()
	}
	return 0
}

// Len returns the total number of queued packets across streams.
func (s *Scheduler) Len() int {
	n := 0
	for _, st := range s.order {
		n += st.ring.Len()
	}
	return n
}

// QueuedBytes returns the payload bytes resident across all stream rings.
func (s *Scheduler) QueuedBytes() int64 { return s.queuedBytes }

// Spec returns a copy of the stream's registered spec.
func (s *Scheduler) Spec(id int) (StreamSpec, error) {
	st, ok := s.streams[id]
	if !ok {
		return StreamSpec{}, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	return st.spec, nil
}

// ShedTolerant proactively drops the stream's head packet if — and only if —
// the stream is lossy, unpaused, and its current window still tolerates a
// loss (cx > 0): the overload ladder's rung-1 action, spending DWCS loss
// budget ahead of time to relieve memory pressure without ever causing a
// violation. The dropped packet is returned (copied out) so the caller can
// release its payload.
func (s *Scheduler) ShedTolerant(id int) (Packet, bool) {
	st, ok := s.streams[id]
	if !ok || !st.spec.Lossy || st.paused || st.cx <= 0 {
		return Packet{}, false
	}
	slot, ok := st.ring.Pop()
	if !ok {
		return Packet{}, false
	}
	pkt := s.table[slot]
	s.queuedBytes -= pkt.Bytes
	s.freeSlot(slot)
	// Same window algebra as a tolerated miss (adjustMissed's cx > 0 arm).
	s.meter.Frac(1)
	s.meter.MemRead(2)
	s.meter.MemWrite(2)
	s.meter.Branch(2)
	st.cx--
	st.cy--
	if st.cy == 0 {
		st.cx, st.cy = st.x, st.y
	}
	st.stats.Dropped++
	st.stats.Shed++
	if pkt.missed {
		// The successor head may predate the watermark; force a rescan.
		s.missWMValid = false
	}
	s.sel.fix(s, st)
	return pkt, true
}

// FlushStream empties the stream's ring without deregistering it, returning
// copies of the discarded packets so the caller can release payloads. Used
// by overload revocation and ext-level stream removal.
func (s *Scheduler) FlushStream(id int) ([]Packet, error) {
	st, ok := s.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	var out []Packet
	for {
		slot, ok := st.ring.Pop()
		if !ok {
			break
		}
		pkt := s.table[slot]
		s.queuedBytes -= pkt.Bytes
		s.freeSlot(slot)
		out = append(out, pkt)
	}
	// Only heads were removed, which can only raise the true minimum
	// deadline, so the watermark stays a valid lower bound.
	s.sel.fix(s, st)
	return out, nil
}

func (s *Scheduler) allocSlot() (uint32, bool) {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		s.meter.MemRead(1)
		s.meter.MemWrite(1)
		return slot, true
	}
	if s.cfg.MaxDescriptors > 0 && len(s.table) >= s.cfg.MaxDescriptors {
		return 0, false
	}
	s.table = append(s.table, Packet{})
	return uint32(len(s.table) - 1), true
}

func (s *Scheduler) freeSlot(slot uint32) {
	s.free = append(s.free, slot)
	s.meter.MemWrite(1)
}

// Enqueue queues a packet on stream id. Bytes, Offset, and Payload are
// taken from p; Seq, Enqueued, and Deadline are assigned by the scheduler
// (successive deadlines are offset by the stream period).
func (s *Scheduler) Enqueue(id int, p Packet) error {
	prevC, prevO := s.meter.SetContext("dwcs", "enqueue")
	defer s.meter.SetContext(prevC, prevO)
	st, ok := s.streams[id]
	s.meter.MemRead(1)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	slot, ok := s.allocSlot()
	if !ok {
		st.stats.RejectedFull++
		return fmt.Errorf("%w: descriptor table exhausted", ErrBufferFull)
	}
	now := s.now()
	base := st.last
	if now > base {
		base = now
	}
	p.StreamID = id
	p.Seq = st.seq
	p.Enqueued = now
	p.Deadline = base + st.spec.Period
	p.missed = false
	p.slot = slot
	s.meter.MemWrite(6) // descriptor fields
	s.meter.Int(3)
	s.table[slot] = p
	wasEmpty := st.ring.Len() == 0
	if !st.ring.Push(slot) {
		s.freeSlot(slot)
		st.stats.RejectedFull++
		return fmt.Errorf("%w: stream %d ring (cap %d)", ErrBufferFull, id, st.ring.Cap())
	}
	if wasEmpty && s.missWMValid && p.Deadline < s.missWM {
		// The stream gained a head with an earlier deadline than any seen
		// by the last scan: tighten the watermark in O(1).
		s.missWM = p.Deadline
		s.meter.MemWrite(1)
	}
	st.last = p.Deadline
	st.seq++
	st.stats.Enqueued++
	s.queuedBytes += p.Bytes
	s.sel.fix(s, st)
	return nil
}

// cmpStreams orders stream a's head packet pa against stream b's head pb;
// negative means a is serviced first. It charges the meter for the fraction
// and integer comparisons the rules perform.
func (s *Scheduler) cmpStreams(a *stream, pa *Packet, b *stream, pb *Packet) int {
	m := s.meter
	lossCmp := func() int {
		// Encoded priority values compare with integer ops; the fraction
		// arithmetic that *produces* them is charged where the encoding
		// happens (selection loop / heap comparator).
		m.Int(2)
		return fixed.New(a.cx, a.cy).Cmp(fixed.New(b.cx, b.cy))
	}
	deadlineCmp := func() int {
		m.Int(1)
		m.Branch(1)
		switch {
		case pa.Deadline < pb.Deadline:
			return -1
		case pa.Deadline > pb.Deadline:
			return 1
		default:
			return 0
		}
	}
	tieRules := func() int {
		// Equal deadlines and equal window-constraint values.
		m.Int(2)
		m.Branch(2)
		if a.cx == 0 && b.cx == 0 {
			// Zero constraints: highest window-denominator first.
			switch {
			case a.cy > b.cy:
				return -1
			case a.cy < b.cy:
				return 1
			}
		} else if a.cx != 0 && b.cx != 0 {
			// Equal non-zero constraints: lowest window-numerator first.
			switch {
			case a.cx < b.cx:
				return -1
			case a.cx > b.cx:
				return 1
			}
		}
		// All other cases: first-come-first-served, with stream id as the
		// final deterministic tie-break so every selector implementation
		// makes the identical choice.
		m.Int(1)
		switch {
		case pa.Enqueued < pb.Enqueued:
			return -1
		case pa.Enqueued > pb.Enqueued:
			return 1
		case a.spec.ID < b.spec.ID:
			return -1
		case a.spec.ID > b.spec.ID:
			return 1
		default:
			return 0
		}
	}

	var c int
	switch s.cfg.Precedence {
	case EDFFirst:
		if c = deadlineCmp(); c != 0 {
			return c
		}
		if c = lossCmp(); c != 0 {
			return c
		}
	default: // LossFirst
		if c = lossCmp(); c != 0 {
			return c
		}
		if c = deadlineCmp(); c != 0 {
			return c
		}
	}
	return tieRules()
}

// selectBest returns the stream whose head packet wins the precedence
// rules, with that head, or nils.
func (s *Scheduler) selectBest() (*stream, *Packet) {
	return s.sel.best(s)
}

// eligibleAt returns when p may be dispatched in paced mode.
func (s *Scheduler) eligibleAt(p *Packet) sim.Time {
	e := p.Deadline - s.cfg.EligibleEarly
	if e < p.Enqueued {
		e = p.Enqueued
	}
	return e
}

// selectEligible returns the precedence winner among heads already eligible
// at now. When no head is eligible it returns the earliest upcoming
// eligibility instead (0 if nothing is queued). Paced selection always
// walks the streams (the embedded NI implementation is a paced scan); the
// structured selectors serve the work-conserving benchmarks.
func (s *Scheduler) selectEligible(now sim.Time) (*stream, *Packet, sim.Time) {
	var bestSt *stream
	var bestP *Packet
	var wait sim.Time
	for _, st := range s.order {
		s.meter.Branch(1)
		p := st.headPacket(s)
		if p == nil {
			continue
		}
		s.meter.Int(2)
		if e := s.eligibleAt(p); now < e {
			if wait == 0 || e < wait {
				wait = e
			}
			continue
		}
		s.meter.Frac(1) // priority encode, as in the scan
		s.meter.MemRead(2)
		s.meter.MemWrite(2)
		s.meter.Call(1)
		if bestSt == nil || s.cmpStreams(st, p, bestSt, bestP) < 0 {
			bestSt, bestP = st, p
		}
	}
	return bestSt, bestP, wait
}

// adjustServiced applies the window-constraint adjustment for a packet of
// st serviced before its deadline.
func (s *Scheduler) adjustServiced(st *stream) {
	s.meter.Frac(2) // window update + priority re-encode arithmetic
	s.meter.MemRead(2)
	s.meter.MemWrite(2)
	s.meter.Branch(2)
	if st.cx > 0 {
		st.cy--
		if st.cx == st.cy {
			st.cx, st.cy = st.x, st.y
		}
		return
	}
	st.cy--
	if st.cy == 0 {
		st.cx, st.cy = st.x, st.y
	}
}

// adjustMissed applies the adjustment for a head packet of st that missed
// its deadline, returning whether the miss was a violation (no loss budget
// left in the current window).
func (s *Scheduler) adjustMissed(st *stream) (violation bool) {
	s.meter.Frac(1)
	s.meter.MemRead(2)
	s.meter.MemWrite(2)
	s.meter.Branch(2)
	if st.cx > 0 {
		st.cx--
		st.cy--
		if st.cy == 0 {
			st.cx, st.cy = st.x, st.y
		}
		return false
	}
	st.stats.Violations++
	st.cy--
	if st.cy == 0 {
		st.cx, st.cy = st.x, st.y
	}
	return true
}

// processMisses walks every stream and handles head packets whose deadlines
// have passed: lossy streams drop them (possibly several), lossless streams
// take the window adjustment once and keep the packet at the head for late
// transmission. A completed walk refreshes the miss watermark; a walk cut
// short by MaxDropsPerDecision leaves it invalid (heads past the cut were
// never examined).
func (s *Scheduler) processMisses(now sim.Time, d *Decision) {
	s.MissScans++
	wm := wmInf
	truncated := false
	for _, st := range s.order {
		if s.cfg.MaxDropsPerDecision > 0 && len(d.Dropped) >= s.cfg.MaxDropsPerDecision {
			truncated = true
			break
		}
		changed := false
		for {
			s.meter.Branch(1)
			p := st.headPacket(s)
			if p == nil {
				break // empty or paused: cannot miss until it gains a head
			}
			if now <= p.Deadline {
				if p.Deadline < wm {
					wm = p.Deadline
				}
				break
			}
			s.meter.Int(1)
			if p.missed {
				break // lossless head already accounted; inert until serviced
			}
			p.missed = true
			s.adjustMissed(st)
			changed = true
			if !st.spec.Lossy {
				break
			}
			st.ring.Pop()
			dropped := *p // copy out before the descriptor slot is recycled
			s.queuedBytes -= dropped.Bytes
			s.freeSlot(p.slot)
			st.stats.Dropped++
			d.Dropped = append(d.Dropped, &dropped)
			if s.cfg.MaxDropsPerDecision > 0 && len(d.Dropped) >= s.cfg.MaxDropsPerDecision {
				truncated = true
				break
			}
		}
		if changed {
			s.sel.fix(s, st)
		}
	}
	if truncated {
		s.missWMValid = false
		return
	}
	s.missWM = wm
	s.missWMValid = true
	s.meter.MemWrite(1) // watermark store
}

// Reconfigure changes a live stream's period and loss-tolerance — the
// paper's §3.1 point that a scheduler close to the network "may be
// reconfigured based on network condition parameters" without crossing the
// I/O bus. Queued packets keep their assigned deadlines; new enqueues use
// the new period, and the current window restarts under the new
// constraint.
func (s *Scheduler) Reconfigure(id int, period sim.Time, loss fixed.Frac) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	probe := st.spec
	probe.Period = period
	probe.Loss = loss
	if err := probe.validate(); err != nil {
		return err
	}
	st.spec = probe
	y := loss.Den
	if y == 0 {
		y = 1
	}
	st.x, st.y = loss.Num, y
	st.cx, st.cy = st.x, st.y
	s.meter.MemWrite(4)
	s.missWMValid = false // defensive: stream attributes changed under the scan
	s.sel.fix(s, st)
	return nil
}

// Pause suspends a stream: its queued packets stop competing for service
// and stop accruing deadline misses — the VCR pause a media server must
// offer. Pausing a paused stream is a no-op.
func (s *Scheduler) Pause(id int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	if st.paused {
		return nil
	}
	st.paused = true
	st.pausedAt = s.now()
	s.sel.fix(s, st)
	return nil
}

// Resume reactivates a paused stream, shifting every queued packet's
// deadline (and the stream's deadline chain) by the paused duration so
// nothing is spuriously late the instant playback continues.
func (s *Scheduler) Resume(id int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	if !st.paused {
		return nil
	}
	shift := s.now() - st.pausedAt
	st.paused = false
	st.last += shift
	// Rebase deadlines of everything queued. Ring order is head..tail;
	// walk by popping and re-pushing through the descriptor table.
	n := st.ring.Len()
	for i := 0; i < n; i++ {
		slot, _ := st.ring.Pop()
		s.table[slot].Deadline += shift
		s.meter.MemWrite(1)
		st.ring.Push(slot)
	}
	// The resumed head rejoins the scan with a deadline the last scan
	// never saw (paused heads contribute nothing); force a rescan.
	s.missWMValid = false
	s.sel.fix(s, st)
	return nil
}

// Paused reports whether the stream is paused.
func (s *Scheduler) Paused(id int) bool {
	if st, ok := s.streams[id]; ok {
		return st.paused
	}
	return false
}

// StreamSnapshot is one stream's state for monitoring — and, since it
// carries the current window position, frame cursor, and deadline phase,
// the transferable image live migration moves between cards.
type StreamSnapshot struct {
	Spec    StreamSpec
	Stats   StreamStats
	Queued  int
	WindowX int64
	WindowY int64
	Paused  bool
	// Seq is the next frame sequence the scheduler will assign (the
	// stream's frame cursor); Phase is the last assigned deadline, so a
	// restored stream continues its deadline train instead of re-phasing.
	Seq   int64
	Phase sim.Time
}

// Snapshot returns every stream's state in insertion order — the
// monitoring view a management client reads over the DVCM.
func (s *Scheduler) Snapshot() []StreamSnapshot {
	// Exactly one allocation, sized up front: the monitoring client polls
	// this on every DVCM read, so no append growth or double-copy.
	out := make([]StreamSnapshot, len(s.order))
	for i, st := range s.order {
		out[i] = StreamSnapshot{
			Spec:    st.spec,
			Stats:   st.stats,
			Queued:  st.ring.Len(),
			WindowX: st.cx,
			WindowY: st.cy,
			Paused:  st.paused,
			Seq:     st.seq,
			Phase:   st.last,
		}
	}
	return out
}

// ExportStream returns one stream's snapshot: the migration image a source
// card hands to the target so the stream resumes mid-window instead of cold.
func (s *Scheduler) ExportStream(id int) (StreamSnapshot, error) {
	st, ok := s.streams[id]
	if !ok {
		return StreamSnapshot{}, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	return StreamSnapshot{
		Spec:    st.spec,
		Stats:   st.stats,
		Queued:  st.ring.Len(),
		WindowX: st.cx,
		WindowY: st.cy,
		Paused:  st.paused,
		Seq:     st.seq,
		Phase:   st.last,
	}, nil
}

// ImportStream registers a stream from a migration image: AddStream with the
// image's spec, then window position, frame cursor, deadline phase, and stats
// restored. Out-of-range window coordinates (a corrupt or hand-built image)
// are clamped back into the declared (x, y) window rather than trusted — a
// migration must never grant more loss budget than the stream's contract.
// Imported streams resume unpaused: migration is itself the resume.
func (s *Scheduler) ImportStream(snap StreamSnapshot) error {
	if err := s.AddStream(snap.Spec); err != nil {
		return err
	}
	st := s.streams[snap.Spec.ID]
	cy := snap.WindowY
	if cy < 1 || cy > st.y {
		cy = st.y
	}
	cx := snap.WindowX
	if cx < 0 {
		cx = 0
	}
	if cx > st.x {
		cx = st.x
	}
	if cx > cy {
		cx = cy
	}
	st.cx, st.cy = cx, cy
	if snap.Seq > 0 {
		st.seq = snap.Seq
	}
	if snap.Phase > 0 {
		st.last = snap.Phase
	}
	st.stats = snap.Stats
	return nil
}

// DequeueFCFS pops the next queued packet in plain round-robin order
// without evaluating any precedence rules or window adjustments — the
// microbenchmarks' "time w/o Scheduler" path, where "the address of the
// frame to be dispatched is readily available and does not need scheduler
// rules" (§4.2). Only the ring and descriptor accesses are charged.
func (s *Scheduler) DequeueFCFS() *Packet {
	prevC, prevO := s.meter.SetContext("dwcs", "dequeue")
	defer s.meter.SetContext(prevC, prevO)
	for range s.order {
		st := s.order[s.rrNext%len(s.order)]
		s.rrNext++
		s.meter.Branch(1)
		slot, ok := st.ring.Pop()
		if !ok {
			continue
		}
		s.meter.MemRead(2) // frame address + length from the descriptor
		pkt := s.table[slot]
		s.queuedBytes -= pkt.Bytes
		s.freeSlot(slot)
		if pkt.missed {
			s.missWMValid = false // successor head may predate the watermark
		}
		st.stats.Serviced++
		st.stats.BytesServiced += pkt.Bytes
		s.sel.fix(s, st)
		return &pkt
	}
	return nil
}

// Schedule makes one scheduling decision at the configured clock's current
// time: process deadline misses, pick the highest-precedence head packet,
// and (if eligible) dequeue it for dispatch. The caller transmits the
// returned packet; transmission cost is the caller's (the microbenchmarks'
// "time w/o scheduler" path).
func (s *Scheduler) Schedule() Decision {
	prevC, prevO := s.meter.SetContext("dwcs", "decision")
	defer s.meter.SetContext(prevC, prevO)
	now := s.now()
	s.meter.ChargeCycles(s.cfg.DecisionOverhead)
	s.TotalDecisions++
	var d Decision
	if s.eagerMissScan {
		s.processMisses(now, &d)
	} else {
		// Lazy miss scan: one watermark compare replaces the O(n) walk
		// whenever no head can have newly missed since the last scan.
		s.meter.MemRead(1)
		s.meter.Branch(1)
		if !s.missWMValid || now > s.missWM {
			s.processMisses(now, &d)
		}
	}
	var st *stream
	var p *Packet
	if s.cfg.WorkConserving {
		st, p = s.selectBest()
		if st == nil {
			return d
		}
	} else {
		// Paced mode: precedence applies among the *eligible* heads only.
		// Sleeping on the global best's eligibility would let a lower-
		// priority head's deadline expire unserved, so when nothing is
		// eligible the wakeup is the earliest eligibility across streams.
		var wait sim.Time
		st, p, wait = s.selectEligible(now)
		if st == nil {
			d.WaitUntil = wait
			return d
		}
	}
	st.ring.Pop()
	pkt := *p // copy out before the descriptor slot is recycled
	s.queuedBytes -= pkt.Bytes
	s.freeSlot(p.slot)
	if pkt.missed {
		// Servicing an already-missed head exposes a successor whose
		// deadline may predate the watermark; force a rescan.
		s.missWMValid = false
	}
	late := pkt.missed || now > pkt.Deadline
	s.adjustServiced(st)
	st.stats.Serviced++
	st.stats.BytesServiced += pkt.Bytes
	if late {
		st.stats.Late++
	}
	s.meter.MemWrite(3) // stats updates
	s.sel.fix(s, st)
	d.Packet = &pkt
	d.Late = late
	return d
}
