package dwcs

import (
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/sim"
)

func TestSortedListSelectorMatchesScan(t *testing.T) {
	for _, prec := range []Precedence{LossFirst, EDFFirst} {
		f := func(seed int64) bool {
			a := driveRandom(Scan, prec, seed, 300)
			b := driveRandom(SortedList, prec, seed, 300)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("precedence %v: %v", prec, err)
		}
	}
}

func TestCalendarSelectorMatchesScanUnderEDF(t *testing.T) {
	f := func(seed int64) bool {
		a := driveRandom(Scan, EDFFirst, seed, 300)
		b := driveRandom(Calendar, EDFFirst, seed, 300)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAllSelectorsParityLongFuzz drives every selector through the same
// 10k-op fuzzed workload (enqueues, clock advances, pause/resume churn,
// reconfigures, decisions) under the deadline-primary precedence — the only
// one the calendar queue supports — and requires identical dispatch/drop
// sequences. The shorter pairwise quick.Check tests above catch most
// divergences; this one exercises long-run structural drift (bucket
// migration, list re-sorts, heap rebuilds after thousands of fixes).
func TestAllSelectorsParityLongFuzz(t *testing.T) {
	const steps = 10_000
	for _, seed := range []int64{1, 42, 1960, 20260805} {
		ref := driveRandom(Scan, EDFFirst, seed, steps)
		for _, sel := range []SelectorKind{Heaps, SortedList, Calendar} {
			got := driveRandom(sel, EDFFirst, seed, steps)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %v trace length %d, scan %d", seed, sel, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: %v diverges from scan at event %d: %+v vs %+v",
						seed, sel, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestCalendarRequiresEDFFirst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("calendar + LossFirst should panic at construction")
		}
	}()
	New(Config{Selector: Calendar, Precedence: LossFirst})
}

func TestSelectorKindNames(t *testing.T) {
	names := map[SelectorKind]string{
		Scan: "scan", Heaps: "heaps", SortedList: "sortedList", Calendar: "calendar",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSortedListRemoveStream(t *testing.T) {
	clk := &testClock{}
	s := New(Config{WorkConserving: true, Selector: SortedList, Now: clk.Now})
	for i := 0; i < 4; i++ {
		mustAdd(t, s, spec(i, 10*sim.Millisecond, fixed.New(1, int64(i)+2)))
		mustEnqueue(t, s, i, Packet{})
	}
	if err := s.RemoveStream(1); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		d := s.Schedule()
		if d.Packet == nil {
			break
		}
		seen[d.Packet.StreamID] = true
	}
	if seen[1] {
		t.Fatal("removed stream dispatched")
	}
	if !seen[0] || !seen[2] || !seen[3] {
		t.Fatalf("missing dispatches: %v", seen)
	}
}

func TestCalendarRemoveStream(t *testing.T) {
	clk := &testClock{}
	s := New(Config{WorkConserving: true, Selector: Calendar, Precedence: EDFFirst, Now: clk.Now})
	for i := 0; i < 3; i++ {
		mustAdd(t, s, spec(i, sim.Time(i+1)*10*sim.Millisecond, fixed.New(1, 2)))
		mustEnqueue(t, s, i, Packet{})
	}
	if err := s.RemoveStream(0); err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		d := s.Schedule()
		if d.Packet == nil {
			break
		}
		if d.Packet.StreamID == 0 {
			t.Fatal("removed stream dispatched")
		}
		count++
	}
	if count != 2 {
		t.Fatalf("dispatched %d, want 2", count)
	}
}

// All four selectors drain a mixed workload completely and identically in
// count.
func TestAllSelectorsDrainEqually(t *testing.T) {
	counts := map[SelectorKind]int{}
	for _, sel := range []SelectorKind{Scan, Heaps, SortedList, Calendar} {
		clk := &testClock{}
		s := New(Config{WorkConserving: true, Selector: sel, Precedence: EDFFirst, Now: clk.Now})
		for i := 0; i < 6; i++ {
			mustAdd(t, s, spec(i, sim.Time(i%3+1)*5*sim.Millisecond, fixed.New(int64(i%2), 3)))
		}
		for j := 0; j < 60; j++ {
			mustEnqueue(t, s, j%6, Packet{Bytes: 100})
		}
		n := 0
		for s.Schedule().Packet != nil {
			n++
		}
		counts[sel] = n
	}
	for sel, n := range counts {
		if n != 60 {
			t.Errorf("%v drained %d of 60", sel, n)
		}
	}
}
