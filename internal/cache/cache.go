// Package cache is a media-object cache for NI or proxy nodes — the
// "media caching or proxy servers" technique the paper's introduction lists
// among the network-level approaches to scalable media delivery (§1).
//
// The cache holds frame extents (clip offset ranges) under a byte budget
// with LRU eviction and exposes the same asynchronous read interface as a
// filesystem, so a producer can front its disk with a cache transparently:
// hits complete after a card-memory copy; misses read through to the
// backing store and insert.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Key identifies one cached extent: a clip (by name) plus its offset.
// Extent granularity is whatever the caller reads — for the MPEG producers
// that is exactly one frame, which matches how players request media.
type Key struct {
	Clip   string
	Offset int64
}

// Cache is an LRU byte-budgeted frame cache over a backing FS.
type Cache struct {
	eng     *sim.Engine
	backing disk.FS
	clip    string // name used in keys for the backing store's media file

	budget  int64
	used    int64
	entries map[Key]*list.Element
	lru     *list.List // front = most recent
	hitCost sim.Time

	// Hits, Misses, Evictions count cache outcomes; HitBytes/MissBytes the
	// corresponding traffic.
	Hits      int64
	Misses    int64
	Evictions int64
	HitBytes  int64
	MissBytes int64

	loading map[Key][]func()
}

type entry struct {
	key  Key
	size int64
}

// New returns a cache of `budget` bytes in front of backing; clip names the
// backing media file in keys. hitCost is the card-memory copy time per hit
// (0 picks a 40 µs default).
func New(eng *sim.Engine, backing disk.FS, clip string, budget int64, hitCost sim.Time) *Cache {
	if budget <= 0 {
		panic(fmt.Sprintf("cache: bad budget %d", budget))
	}
	if hitCost == 0 {
		hitCost = 40 * sim.Microsecond
	}
	return &Cache{
		eng:     eng,
		backing: backing,
		clip:    clip,
		budget:  budget,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		hitCost: hitCost,
		loading: make(map[Key][]func()),
	}
}

// Name implements disk.FS.
func (c *Cache) Name() string { return "cache(" + c.backing.Name() + ")" }

// Used returns resident bytes.
func (c *Cache) Used() int64 { return c.used }

// HitRate returns hits/(hits+misses), 0 when cold.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Read implements disk.FS: serve from cache or read through and insert.
// Objects larger than the whole budget bypass the cache.
func (c *Cache) Read(off, n int64, done func()) {
	key := Key{Clip: c.clip, Offset: off}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.Hits++
		c.HitBytes += n
		c.eng.After(c.hitCost, done)
		return
	}
	c.Misses++
	c.MissBytes += n
	if n > c.budget {
		c.backing.Read(off, n, done) // uncacheably large: read through
		return
	}
	// Coalesce concurrent misses on the same extent.
	if waiters, inFlight := c.loading[key]; inFlight {
		c.loading[key] = append(waiters, done)
		return
	}
	c.loading[key] = []func(){done}
	c.backing.Read(off, n, func() {
		c.insert(key, n)
		waiters := c.loading[key]
		delete(c.loading, key)
		for _, w := range waiters {
			if w != nil {
				w()
			}
		}
	})
}

func (c *Cache) insert(key Key, size int64) {
	if _, dup := c.entries[key]; dup {
		return
	}
	for c.used+size > c.budget {
		back := c.lru.Back()
		if back == nil {
			return // shouldn't happen: size ≤ budget
		}
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.used -= ev.size
		c.Evictions++
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, size: size})
	c.used += size
}

// Contains reports whether the extent at off is resident.
func (c *Cache) Contains(off int64) bool {
	_, ok := c.entries[Key{Clip: c.clip, Offset: off}]
	return ok
}
