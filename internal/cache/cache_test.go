package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/sim"
)

func newCache(t *testing.T, budget int64) (*sim.Engine, *Cache, *disk.Disk) {
	if t != nil {
		t.Helper()
	}
	eng := sim.NewEngine(4)
	d := disk.New(eng, disk.DefaultSCSI("backing"))
	fs := disk.NewDOSFS(d)
	return eng, New(eng, fs, "clip", budget, 0), d
}

func TestMissReadsThroughThenHits(t *testing.T) {
	eng, c, d := newCache(t, 1<<20)
	var missT, hitT sim.Time
	start := eng.Now()
	c.Read(0, 1000, func() { missT = eng.Now() - start })
	eng.Run()
	start = eng.Now()
	c.Read(0, 1000, func() { hitT = eng.Now() - start })
	eng.Run()
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
	if hitT >= missT/10 {
		t.Fatalf("hit (%v) should be far cheaper than miss (%v)", hitT, missT)
	}
	if d.Stats.Reads != 1 {
		t.Fatalf("backing reads = %d, want 1", d.Stats.Reads)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	eng, c, _ := newCache(t, 3000)
	run := func(off int64) {
		c.Read(off, 1000, nil)
		eng.Run()
	}
	run(0)
	run(1000)
	run(2000) // full
	run(0)    // refresh 0
	run(3000) // evicts 1000 (LRU)
	if !c.Contains(0) || !c.Contains(3000) {
		t.Fatal("wrong entries evicted")
	}
	if c.Contains(1000) {
		t.Fatal("LRU entry survived")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
	if c.Used() > 3000 {
		t.Fatalf("used = %d over budget", c.Used())
	}
}

func TestOversizeObjectBypasses(t *testing.T) {
	eng, c, d := newCache(t, 1000)
	done := false
	c.Read(0, 5000, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("oversize read did not complete")
	}
	if c.Contains(0) {
		t.Fatal("oversize object cached")
	}
	if d.Stats.Reads != 1 {
		t.Fatalf("backing reads = %d", d.Stats.Reads)
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	eng, c, d := newCache(t, 1<<20)
	done := 0
	for i := 0; i < 5; i++ {
		c.Read(0, 1000, func() { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("completions = %d", done)
	}
	if d.Stats.Reads != 1 {
		t.Fatalf("backing reads = %d, want 1 (coalesced)", d.Stats.Reads)
	}
	if c.Misses != 5 || c.Hits != 0 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	d := disk.New(eng, disk.DefaultSCSI("b"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(eng, disk.NewDOSFS(d), "c", 0, 0)
}

func TestNameAndColdRate(t *testing.T) {
	_, c, _ := newCache(t, 1000)
	if c.Name() != "cache(dosFs)" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.HitRate() != 0 {
		t.Fatal("cold hit rate should be 0")
	}
}

// Property: used bytes never exceed the budget, and every read completes.
func TestBudgetInvariant(t *testing.T) {
	f := func(offs []uint16, budgetSeed uint16) bool {
		budget := int64(budgetSeed)%8000 + 1000
		eng, c, _ := newCache(nil, budget)
		completions := 0
		for _, o := range offs {
			c.Read(int64(o)*500, 500, func() { completions++ })
			eng.Run()
			if c.Used() > budget {
				return false
			}
		}
		return completions == len(offs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A producer-style streaming loop over a looping clip: the second pass is
// nearly all hits.
func TestRepeatStreamIsCached(t *testing.T) {
	eng, c, d := newCache(t, 1<<20)
	offsets := []int64{0, 1000, 2000, 3000, 4000}
	pass := func() {
		for _, off := range offsets {
			c.Read(off, 1000, nil)
			eng.Run()
		}
	}
	pass()
	reads := d.Stats.Reads
	pass()
	if d.Stats.Reads != reads {
		t.Fatalf("second pass touched the disk: %d → %d", reads, d.Stats.Reads)
	}
	if c.Hits != int64(len(offsets)) {
		t.Fatalf("hits = %d", c.Hits)
	}
}
