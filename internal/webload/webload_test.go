package webload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runProfile(t *testing.T, prof Profile, nCPU int, dur sim.Time) (*hostos.System, *Generator, *stats.Series) {
	t.Helper()
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, nCPU, 10*sim.Millisecond)
	g := NewGenerator(eng, sys, prof)
	g.Start()
	var series stats.Series
	sys.SampleUtilization(sim.Second, &series)
	eng.RunUntil(dur)
	g.Stop()
	return sys, g, &series
}

func TestNoLoadGeneratesNothing(t *testing.T) {
	sys, g, _ := runProfile(t, NoLoad(), 2, 10*sim.Second)
	if g.Requests != 0 {
		t.Fatalf("requests = %d", g.Requests)
	}
	if sys.TotalUtilization() != 0 {
		t.Fatalf("utilization = %v", sys.TotalUtilization())
	}
}

func TestTargetUtilization45(t *testing.T) {
	sys, _, _ := runProfile(t, TargetUtilization("45%", 45, 2), 2, 100*sim.Second)
	got := sys.TotalUtilization() * 100
	if math.Abs(got-45) > 8 {
		t.Fatalf("utilization = %.1f%%, want ≈45", got)
	}
}

func TestTargetUtilization60(t *testing.T) {
	sys, _, _ := runProfile(t, TargetUtilization("60%", 60, 2), 2, 100*sim.Second)
	got := sys.TotalUtilization() * 100
	if math.Abs(got-60) > 8 {
		t.Fatalf("utilization = %.1f%%, want ≈60", got)
	}
}

func TestLoadIsBursty(t *testing.T) {
	// Figure 6's 60% curve has peaks above 80%: per-second samples must
	// spread well around the mean.
	_, _, series := runProfile(t, TargetUtilization("60%", 60, 2), 2, 100*sim.Second)
	if series.Max() < 70 {
		t.Fatalf("max sample = %.1f%%, expected bursts above 70", series.Max())
	}
	if series.Min() > 55 {
		t.Fatalf("min sample = %.1f%%, expected troughs below 55", series.Min())
	}
}

func TestRequestsComplete(t *testing.T) {
	_, g, _ := runProfile(t, TargetUtilization("45%", 45, 2), 2, 30*sim.Second)
	if g.Requests == 0 {
		t.Fatal("no requests issued")
	}
	// Under-loaded system: nearly everything completes within the run.
	if float64(g.Completed) < 0.9*float64(g.Requests) {
		t.Fatalf("completed %d of %d", g.Completed, g.Requests)
	}
}

func TestStopHaltsLoad(t *testing.T) {
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 2, 10*sim.Millisecond)
	g := NewGenerator(eng, sys, TargetUtilization("60%", 60, 2))
	g.Start()
	eng.RunUntil(5 * sim.Second)
	g.Stop()
	g.Stop() // idempotent
	before := g.Requests
	eng.RunUntil(10 * sim.Second)
	if g.Requests != before {
		t.Fatalf("requests kept arriving after Stop: %d → %d", before, g.Requests)
	}
}

func TestDaemonsImposeLightLoad(t *testing.T) {
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 2, 10*sim.Millisecond)
	stop := Daemons(eng, sys)
	eng.RunUntil(20 * sim.Second)
	stop()
	u := sys.TotalUtilization() * 100
	if u <= 0 || u > 3 {
		t.Fatalf("daemon load = %.2f%%, want small but nonzero", u)
	}
}

func TestGeneratorString(t *testing.T) {
	g := NewGenerator(sim.NewEngine(1), hostos.New(sim.NewEngine(1), 1, sim.Millisecond), NoLoad())
	if g.String() != "no-load" {
		t.Fatalf("String = %q", g.String())
	}
	g2 := NewGenerator(sim.NewEngine(1), hostos.New(sim.NewEngine(1), 1, sim.Millisecond),
		TargetUtilization("x", 45, 2))
	if !strings.Contains(g2.String(), "req /") {
		t.Fatalf("String = %q", g2.String())
	}
}
