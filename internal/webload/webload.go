// Package webload reproduces the paper's server-loading setup (Figure 5):
// an Apache 1.3.12-style web server loaded by remote `httperf` clients.
//
// httperf "allows web pages to be requested at a certain rate by a number
// of connections"; the paper applies two load levels, averaging 45% and 60%
// CPU utilization on the host, with visible burstiness (Figure 6 shows
// excursions above 80% during the 60% run). The generator therefore emits
// request *bursts* at a fixed interval; every request costs a fixed CPU
// demand served by the hostos time-sharing queues, like Apache worker
// processes would.
package webload

import (
	"fmt"
	"math"

	"repro/internal/hostos"
	"repro/internal/sim"
)

// Profile describes one httperf run.
type Profile struct {
	Name          string
	BurstEvery    sim.Time // interval between request bursts
	BurstSize     int      // requests per burst (jittered ±50%)
	PerRequestCPU sim.Time // CPU demand of serving one request
	CPU           int      // hostos CPU to load, or hostos.AnyCPU
	// Spread assigns requests round-robin across all CPUs instead of
	// least-loaded placement: Apache worker processes do not migrate away
	// from the processor the media scheduler is bound to, which is exactly
	// why host-based scheduling degrades (§4.2.3).
	Spread bool
	// ModPeriod/ModDepth modulate the burst size over a slow cycle:
	// Figure 6's 60%-average run sustains >80% utilization for tens-of-second
	// stretches. Burst size is scaled by 1 + ModDepth·sin(2πt/ModPeriod).
	ModPeriod sim.Time
	ModDepth  float64
}

// NoLoad is the quiescent profile: only background daemons run.
func NoLoad() Profile { return Profile{Name: "no-load"} }

// TargetUtilization builds a profile that averages roughly pct percent
// utilization across nCPU processors.
//
// demand per second = pct/100 × nCPU seconds; with 6 ms per request that
// sets the burst size at a 250 ms burst interval.
func TargetUtilization(name string, pct float64, nCPU int) Profile {
	const perReq = 6 * sim.Millisecond
	const every = 250 * sim.Millisecond
	demandPerSec := pct / 100 * float64(nCPU) // CPU-seconds per second
	reqPerSec := demandPerSec / perReq.Seconds()
	return Profile{
		Name:          name,
		BurstEvery:    every,
		BurstSize:     int(reqPerSec*every.Seconds() + 0.5),
		PerRequestCPU: perReq,
		CPU:           hostos.AnyCPU,
		Spread:        true,
		ModPeriod:     50 * sim.Second,
		ModDepth:      1.0,
	}
}

// Generator drives a Profile against a host.
type Generator struct {
	eng  *sim.Engine
	sys  *hostos.System
	prof Profile

	// Requests counts requests issued; Completed counts served.
	Requests  int64
	Completed int64

	stop func()
}

// NewGenerator returns an idle generator.
func NewGenerator(eng *sim.Engine, sys *hostos.System, prof Profile) *Generator {
	return &Generator{eng: eng, sys: sys, prof: prof}
}

// Start begins emitting bursts until Stop (idempotent for NoLoad).
func (g *Generator) Start() {
	if g.prof.BurstSize == 0 || g.prof.BurstEvery == 0 {
		return
	}
	g.stop = g.eng.Every(g.prof.BurstEvery, func() {
		n := g.prof.BurstSize
		if g.prof.ModPeriod > 0 {
			phase := 2 * math.Pi * float64(g.eng.Now()%g.prof.ModPeriod) / float64(g.prof.ModPeriod)
			n = int(float64(n) * (1 + g.prof.ModDepth*math.Sin(phase)))
		}
		// ±50% deterministic jitter from the engine RNG: the Figure 6
		// curves are spiky, not flat.
		n = n/2 + g.eng.Rand().Intn(n+1)
		for i := 0; i < n; i++ {
			g.Requests++
			cpu := g.prof.CPU
			if g.prof.Spread {
				cpu = int(g.Requests) % g.sys.NumCPU()
			}
			g.sys.Submit(cpu, g.prof.PerRequestCPU, func() { g.Completed++ })
		}
	})
}

// Stop halts the generator.
func (g *Generator) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// String describes the profile.
func (g *Generator) String() string {
	p := g.prof
	if p.BurstSize == 0 {
		return p.Name
	}
	return fmt.Sprintf("%s: %d req / %v, %v CPU each", p.Name, p.BurstSize, p.BurstEvery, p.PerRequestCPU)
}

// Daemons submits the steady trickle of system-daemon work even a "minimal
// installation" runs (§4.2.3) — a small periodic demand on every CPU plus a
// heavier housekeeping burst every few seconds on the last CPU (cron jobs,
// page-scanner activity), which gives the quiescent Figure 6 curve its
// 30–35% excursions without touching the processor the scheduler is bound
// to.
func Daemons(eng *sim.Engine, sys *hostos.System) (stop func()) {
	s1 := eng.Every(100*sim.Millisecond, func() {
		for i := 0; i < sys.NumCPU(); i++ {
			sys.Submit(i, 500*sim.Microsecond, nil)
		}
	})
	s2 := eng.Every(7*sim.Second, func() {
		sys.Submit(sys.NumCPU()-1, 400*sim.Millisecond, nil)
	})
	return func() { s1(); s2() }
}
