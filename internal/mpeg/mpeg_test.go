package mpeg

import (
	"testing"
	"testing/quick"
)

func TestDefaultClipMatchesPaperWorkload(t *testing.T) {
	c := GenerateDefault()
	if len(c.Frames) != 151 {
		t.Fatalf("frames = %d, want 151 (Table 1/2 workload)", len(c.Frames))
	}
	if c.Bytes != 773665 {
		t.Fatalf("total = %d bytes, want 773665 (Table 5 file)", c.Bytes)
	}
}

func TestGOPStructure(t *testing.T) {
	c := GenerateDefault()
	i, p, b := c.CountByType()
	// IBBPBBPBB over 151 frames: I every 9th.
	if i != 17 {
		t.Errorf("I frames = %d, want 17", i)
	}
	if p == 0 || b == 0 {
		t.Errorf("missing P (%d) or B (%d) frames", p, b)
	}
	if b <= p || p <= i {
		t.Errorf("expected B > P > I counts, got I=%d P=%d B=%d", i, p, b)
	}
	if c.Frames[0].Type != IFrame {
		t.Error("clip must start with an I frame")
	}
}

func TestIFramesLargerOnAverage(t *testing.T) {
	c := GenerateDefault()
	var iSum, bSum, iN, bN int64
	for _, f := range c.Frames {
		switch f.Type {
		case IFrame:
			iSum += f.Size
			iN++
		case BFrame:
			bSum += f.Size
			bN++
		}
	}
	if iSum/iN <= 2*(bSum/bN) {
		t.Fatalf("mean I (%d) should be well above mean B (%d)", iSum/iN, bSum/bN)
	}
}

func TestOffsetsAreContiguous(t *testing.T) {
	c := GenerateDefault()
	off := int64(seqHeaderSize)
	for i, f := range c.Frames {
		if f.Offset != off {
			t.Fatalf("frame %d offset = %d, want %d", i, f.Offset, off)
		}
		if f.Size <= headerSize {
			t.Fatalf("frame %d size %d too small", i, f.Size)
		}
		off += f.Size
	}
	if c.Bytes != off+endCodeSize {
		t.Fatalf("Bytes = %d, want %d", c.Bytes, off+endCodeSize)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDefault()
	b := GenerateDefault()
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("frame %d differs between runs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Frames: 0, FPS: 30, GOPPattern: "I"},
		{Frames: 10, FPS: 30, GOPPattern: "BBI"},
		{Frames: 10, FPS: 30, GOPPattern: ""},
		{Frames: 10, FPS: 0, GOPPattern: "I"},
		{Frames: 10, FPS: 30, GOPPattern: "IXB"},
		{Frames: 1000, FPS: 30, GOPPattern: "I", TargetSize: 100},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestGenerateWithMeanFrame(t *testing.T) {
	c, err := Generate(GenConfig{Frames: 50, FPS: 24, GOPPattern: "IPB", MeanFrame: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean := c.MeanFrameSize()
	if mean < 1500 || mean > 2500 {
		t.Fatalf("mean frame = %d, want ≈2000", mean)
	}
}

func TestBitrate(t *testing.T) {
	c := GenerateDefault()
	// 773665 B × 8 × 30 fps / 151 frames ≈ 1.23 Mbps — typical MPEG-1.
	bps := c.BitrateBps()
	if bps < 1_000_000 || bps > 1_500_000 {
		t.Fatalf("bitrate = %d bps, want ≈1.23M", bps)
	}
	empty := &Clip{}
	if empty.BitrateBps() != 0 || empty.MeanFrameSize() != 0 {
		t.Error("empty clip should report zero rate and size")
	}
}

func TestEncodeSegmentRoundTrip(t *testing.T) {
	c := GenerateDefault()
	data := Encode(c, 99)
	if int64(len(data)) != c.Bytes {
		t.Fatalf("encoded %d bytes, want %d", len(data), c.Bytes)
	}
	got, err := Segment(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPS != c.FPS {
		t.Errorf("fps = %d, want %d", got.FPS, c.FPS)
	}
	if len(got.Frames) != len(c.Frames) {
		t.Fatalf("segmented %d frames, want %d", len(got.Frames), len(c.Frames))
	}
	for i := range got.Frames {
		if got.Frames[i] != c.Frames[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got.Frames[i], c.Frames[i])
		}
	}
	if got.Bytes != c.Bytes {
		t.Errorf("segmented Bytes = %d, want %d", got.Bytes, c.Bytes)
	}
}

func TestSegmentRejectsMalformed(t *testing.T) {
	good := Encode(GenerateDefault(), 99)
	cases := map[string][]byte{
		"too short":    good[:8],
		"bad magic":    append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated":    good[:len(good)-10],
		"bad type":     corruptType(good),
		"no end":       good[:len(good)-endCodeSize],
		"garbage body": append(append([]byte{}, good[:seqHeaderSize]...), 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, data := range cases {
		if _, err := Segment(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func corruptType(good []byte) []byte {
	bad := append([]byte{}, good...)
	bad[seqHeaderSize+6] = 9 // invalid coding type in first picture header
	return bad
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" || BFrame.String() != "B" {
		t.Error("frame type names wrong")
	}
	if FrameType(7).String() != "FrameType(7)" {
		t.Error("unknown type name wrong")
	}
}

// Property: for any valid config, generation conserves the byte budget and
// encode/segment round-trips.
func TestGenerateRoundTripProperty(t *testing.T) {
	f := func(frames uint8, seed int64) bool {
		n := int(frames)%100 + 2
		cfg := GenConfig{Frames: n, FPS: 25, GOPPattern: "IBBPBB", MeanFrame: 1200, Seed: seed}
		c, err := Generate(cfg)
		if err != nil {
			return false
		}
		got, err := Segment(Encode(c, seed))
		if err != nil {
			return false
		}
		return len(got.Frames) == n && got.Bytes == c.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
