package mpeg

import (
	"testing"

	"repro/internal/sim"
)

func TestPlayerStartsAtThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlayer(eng, 10, 3) // 100ms interval
	p.Receive()
	p.Receive()
	if p.Playing() {
		t.Fatal("started below threshold")
	}
	p.Receive()
	if !p.Playing() {
		t.Fatal("did not start at threshold")
	}
	eng.RunUntil(350 * sim.Millisecond)
	if p.Displayed != 3 {
		t.Fatalf("displayed = %d, want 3", p.Displayed)
	}
}

func TestPlayerSmoothPlayback(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlayer(eng, 10, 2)
	// Frames arrive exactly at the display rate: no stalls.
	for i := 0; i < 30; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		eng.At(at, p.Receive)
	}
	// Stop just before the feed ends; running past it would count the
	// end-of-stream underflow as a stall.
	eng.RunUntil(3 * sim.Second)
	p.Close()
	if p.Stalls != 0 {
		t.Fatalf("stalls = %d on a smooth feed", p.Stalls)
	}
	if p.Displayed < 27 {
		t.Fatalf("displayed = %d", p.Displayed)
	}
}

func TestPlayerStallsOnUnderflow(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlayer(eng, 10, 2)
	var stallAt, resumeAt sim.Time
	p.OnStall = func(at sim.Time) { stallAt = at }
	p.OnResume = func(at sim.Time) { resumeAt = at }
	// Two frames arrive, play out, then a 1s gap before the feed resumes.
	eng.At(0, p.Receive)
	eng.At(0, p.Receive)
	for i := 0; i < 5; i++ {
		eng.At(sim.Time(1500+i*100)*sim.Millisecond, p.Receive)
	}
	eng.RunUntil(2050 * sim.Millisecond) // before the feed's own end
	p.Close()
	if p.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", p.Stalls)
	}
	if stallAt == 0 || resumeAt <= stallAt {
		t.Fatalf("stall window = [%v, %v]", stallAt, resumeAt)
	}
	if p.StallTime <= 0 {
		t.Fatalf("stall time = %v", p.StallTime)
	}
}

func TestPlayerCloseDuringStallFinalizesTime(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlayer(eng, 10, 1)
	eng.At(0, p.Receive)
	eng.RunUntil(2 * sim.Second) // plays 1 frame, stalls
	if p.Stalls != 1 {
		t.Fatalf("stalls = %d", p.Stalls)
	}
	p.Close()
	if p.StallTime <= 0 {
		t.Fatal("stall time not finalized on Close")
	}
}

func TestPlayerMaxBuffered(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPlayer(eng, 10, 100) // never starts
	for i := 0; i < 7; i++ {
		p.Receive()
	}
	if p.MaxBuffered != 7 || p.Buffered() != 7 {
		t.Fatalf("max=%d cur=%d", p.MaxBuffered, p.Buffered())
	}
	if p.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestPlayerValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, f := range []func(){
		func() { NewPlayer(eng, 0, 1) },
		func() { NewPlayer(eng, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
