// Package mpeg provides a synthetic MPEG-1 workload: a generator that emits
// clips with a realistic GOP structure (I/P/B frame mix and size skew), a
// simplified bitstream encoder, and a segmenter that splits the bitstream
// back into frames.
//
// The paper streams MPEG-1 video segmented into I, P and B frames by "an
// MPEG segmentation program developed in [33, 32]" which "emulates the MPEG
// file segmentation process in an MPEG player" (§4.1). The original clips
// are unavailable, so Generate produces clips with the same shape; by
// default GenerateDefault yields the exact 773665-byte file size Table 5
// DMA-transfers, split into the 151 frames the Table 1/2 microbenchmarks
// schedule.
//
// The bitstream uses real MPEG-1 start codes (sequence header 0x000001B3,
// picture 0x00000100, sequence end 0x000001B7) with a simplified picture
// header, and payload bytes are drawn from 0x20–0xFF so no payload byte run
// can alias a start code; Segment therefore recovers frame boundaries
// exactly, like a player's segmenter.
package mpeg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// FrameType is an MPEG-1 picture coding type.
type FrameType byte

// MPEG-1 picture coding types.
const (
	IFrame FrameType = 1
	PFrame FrameType = 2
	BFrame FrameType = 3
)

// String returns "I", "P" or "B".
func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	case BFrame:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// Frame describes one segmented frame.
type Frame struct {
	Index  int       // position in the clip
	Type   FrameType // I, P or B
	Size   int64     // total bytes including picture header
	Offset int64     // byte offset within the encoded file
}

// Clip is a segmented MPEG sequence.
type Clip struct {
	Frames []Frame
	FPS    int
	Bytes  int64 // total encoded size including sequence header/end code
}

// MeanFrameSize returns the average frame size in bytes.
func (c *Clip) MeanFrameSize() int64 {
	if len(c.Frames) == 0 {
		return 0
	}
	var sum int64
	for _, f := range c.Frames {
		sum += f.Size
	}
	return sum / int64(len(c.Frames))
}

// CountByType returns how many frames of each type the clip has.
func (c *Clip) CountByType() (i, p, b int) {
	for _, f := range c.Frames {
		switch f.Type {
		case IFrame:
			i++
		case PFrame:
			p++
		case BFrame:
			b++
		}
	}
	return
}

// BitrateBps returns the clip's nominal bit rate at its frame rate.
func (c *Clip) BitrateBps() int64 {
	if len(c.Frames) == 0 || c.FPS == 0 {
		return 0
	}
	return c.Bytes * 8 * int64(c.FPS) / int64(len(c.Frames))
}

// ByType splits the clip's frames into I, P, and B lists — the layered-
// streaming decomposition that maps MPEG onto DWCS: all packets in one
// stream share a loss-tolerance (§3.1.2, "At any time, all packets in the
// same stream have the same loss-tolerance"), so a server that must not
// lose reference frames schedules I frames as a zero-loss stream, P frames
// with a small tolerance, and B frames as the lossy layer.
func (c *Clip) ByType() (i, p, b []Frame) {
	for _, f := range c.Frames {
		switch f.Type {
		case IFrame:
			i = append(i, f)
		case PFrame:
			p = append(p, f)
		case BFrame:
			b = append(b, f)
		}
	}
	return
}

// GenConfig parameterizes clip generation.
type GenConfig struct {
	Frames     int    // number of frames
	FPS        int    // nominal frame rate
	GOPPattern string // e.g. "IBBPBBPBB"; must start with 'I'
	TargetSize int64  // total encoded size to hit exactly; 0 = derive from MeanFrame
	MeanFrame  int64  // mean frame size when TargetSize == 0
	Seed       int64  // deterministic generation seed
}

// DefaultConfig is the workload used by the paper's microbenchmarks:
// 151 frames totalling exactly 773665 bytes.
func DefaultConfig() GenConfig {
	return GenConfig{
		Frames:     151,
		FPS:        30,
		GOPPattern: "IBBPBBPBB",
		TargetSize: 773665,
		Seed:       1960, // i960, naturally
	}
}

// Relative size weights per frame type (I:P:B ≈ 5:2:1, typical MPEG-1).
var typeWeight = map[FrameType]int64{IFrame: 50, PFrame: 20, BFrame: 10}

// headerSize is the encoded per-picture header: 4-byte start code,
// 2-byte temporal reference, 1-byte coding type.
const headerSize = 7

// seqHeaderSize is the leading sequence header; endCodeSize the trailer.
const (
	seqHeaderSize = 12
	endCodeSize   = 4
)

// Generate produces a clip per cfg. Frame sizes follow the GOP type weights
// with deterministic ±25% jitter; when TargetSize is set the sizes are
// scaled and the remainder folded into the final frame so the total encoded
// size matches exactly.
func Generate(cfg GenConfig) (*Clip, error) {
	if cfg.Frames <= 0 {
		return nil, errors.New("mpeg: Frames must be positive")
	}
	if cfg.GOPPattern == "" || cfg.GOPPattern[0] != 'I' {
		return nil, fmt.Errorf("mpeg: GOP pattern %q must start with I", cfg.GOPPattern)
	}
	if cfg.FPS <= 0 {
		return nil, errors.New("mpeg: FPS must be positive")
	}
	types := make([]FrameType, cfg.Frames)
	for i := range types {
		switch cfg.GOPPattern[i%len(cfg.GOPPattern)] {
		case 'I':
			types[i] = IFrame
		case 'P':
			types[i] = PFrame
		case 'B':
			types[i] = BFrame
		default:
			return nil, fmt.Errorf("mpeg: bad GOP symbol %q", cfg.GOPPattern[i%len(cfg.GOPPattern)])
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := make([]int64, cfg.Frames)
	var wsum int64
	for i, ft := range types {
		w := typeWeight[ft]
		// ±25% deterministic jitter.
		w = w * int64(75+rng.Intn(51)) / 100
		weights[i] = w
		wsum += w
	}

	payloadBudget := cfg.TargetSize - seqHeaderSize - endCodeSize - int64(cfg.Frames*headerSize)
	if cfg.TargetSize == 0 {
		mean := cfg.MeanFrame
		if mean == 0 {
			mean = 4096
		}
		payloadBudget = (mean - headerSize) * int64(cfg.Frames)
	}
	if payloadBudget < int64(cfg.Frames) {
		return nil, fmt.Errorf("mpeg: target size too small for %d frames", cfg.Frames)
	}

	clip := &Clip{FPS: cfg.FPS}
	off := int64(seqHeaderSize)
	var used int64
	for i := range types {
		payload := payloadBudget * weights[i] / wsum
		if payload < 1 {
			payload = 1
		}
		if i == cfg.Frames-1 {
			payload = payloadBudget - used // fold remainder into last frame
		}
		used += payload
		size := payload + headerSize
		clip.Frames = append(clip.Frames, Frame{
			Index: i, Type: types[i], Size: size, Offset: off,
		})
		off += size
	}
	clip.Bytes = off + endCodeSize
	return clip, nil
}

// GenerateDefault produces the paper's default workload and panics on the
// (impossible) config error — convenient for benchmarks and examples.
func GenerateDefault() *Clip {
	c, err := Generate(DefaultConfig())
	if err != nil {
		panic(err)
	}
	return c
}

// Start codes.
var (
	seqStartCode = []byte{0x00, 0x00, 0x01, 0xB3}
	picStartCode = []byte{0x00, 0x00, 0x01, 0x00}
	endCode      = []byte{0x00, 0x00, 0x01, 0xB7}
)

// Encode serializes the clip into a bitstream. Payload bytes are 0x20–0xFF
// so start codes cannot occur inside payloads.
func Encode(c *Clip, seed int64) []byte {
	out := make([]byte, 0, c.Bytes)
	out = append(out, seqStartCode...)
	var wh [8]byte
	binary.BigEndian.PutUint32(wh[:4], 352<<12|240) // 352×240 SIF, packed
	binary.BigEndian.PutUint32(wh[4:], uint32(c.FPS))
	out = append(out, wh[:]...)
	rng := rand.New(rand.NewSource(seed))
	for _, f := range c.Frames {
		out = append(out, picStartCode...)
		var tr [2]byte
		binary.BigEndian.PutUint16(tr[:], uint16(f.Index))
		out = append(out, tr[:]...)
		out = append(out, byte(f.Type))
		for j := int64(0); j < f.Size-headerSize; j++ {
			out = append(out, byte(0x20+rng.Intn(0xE0)))
		}
	}
	out = append(out, endCode...)
	return out
}

// Segment parses an encoded bitstream back into a clip — the player-side
// segmentation step the paper runs as its stream producer. It returns an
// error on malformed input.
func Segment(data []byte) (*Clip, error) {
	if len(data) < seqHeaderSize+endCodeSize {
		return nil, errors.New("mpeg: stream too short")
	}
	if string(data[:4]) != string(seqStartCode) {
		return nil, errors.New("mpeg: missing sequence header")
	}
	fps := int(binary.BigEndian.Uint32(data[8:12]))
	clip := &Clip{FPS: fps}
	i := seqHeaderSize
	for i+4 <= len(data) {
		if string(data[i:i+4]) == string(endCode) {
			clip.Bytes = int64(i + endCodeSize)
			return clip, nil
		}
		if string(data[i:i+4]) != string(picStartCode) {
			return nil, fmt.Errorf("mpeg: expected picture start code at %d", i)
		}
		if i+headerSize > len(data) {
			return nil, errors.New("mpeg: truncated picture header")
		}
		idx := int(binary.BigEndian.Uint16(data[i+4 : i+6]))
		ft := FrameType(data[i+6])
		if ft != IFrame && ft != PFrame && ft != BFrame {
			return nil, fmt.Errorf("mpeg: bad coding type %d at %d", ft, i)
		}
		// Scan to the next start code.
		j := i + headerSize
		for j+3 <= len(data) && !(data[j] == 0 && data[j+1] == 0 && data[j+2] == 1) {
			j++
		}
		if j+3 > len(data) {
			return nil, errors.New("mpeg: unterminated picture")
		}
		clip.Frames = append(clip.Frames, Frame{
			Index: idx, Type: ft, Size: int64(j - i), Offset: int64(i),
		})
		i = j
	}
	return nil, errors.New("mpeg: missing sequence end code")
}
