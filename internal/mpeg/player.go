package mpeg

import (
	"fmt"

	"repro/internal/sim"
)

// Player models the client-side MPEG player the paper streams to: frames
// arrive over the network into a playout buffer; a display process consumes
// one frame per display interval. If the buffer runs dry the player stalls
// (a visible glitch) and rebuffers until StartThreshold frames are queued
// again — the end-user-facing QoS metric behind the paper's delay-jitter
// and loss discussion (§1, §3.1.2: consumers "buffer frames for display").
type Player struct {
	eng *sim.Engine

	// FPS is the display rate; StartThreshold the frames buffered before
	// (re)starting playback.
	FPS            int
	StartThreshold int

	buffered int
	playing  bool
	started  bool
	stop     func()

	// Displayed counts frames shown; Stalls counts underflow events;
	// StallTime accumulates time spent rebuffering; MaxBuffered tracks the
	// deepest playout queue.
	Displayed   int64
	Stalls      int64
	StallTime   sim.Time
	MaxBuffered int

	stallStart sim.Time

	// OnStall and OnResume observe glitch boundaries.
	OnStall  func(at sim.Time)
	OnResume func(at sim.Time)
}

// NewPlayer returns a player displaying at fps, starting after threshold
// buffered frames.
func NewPlayer(eng *sim.Engine, fps, threshold int) *Player {
	if fps <= 0 || threshold <= 0 {
		panic(fmt.Sprintf("mpeg: bad player fps=%d threshold=%d", fps, threshold))
	}
	return &Player{eng: eng, FPS: fps, StartThreshold: threshold}
}

// interval is the display period.
func (p *Player) interval() sim.Time {
	return sim.Time(int64(sim.Second) / int64(p.FPS))
}

// Receive buffers one arrived frame, (re)starting playback at threshold.
func (p *Player) Receive() {
	p.buffered++
	if p.buffered > p.MaxBuffered {
		p.MaxBuffered = p.buffered
	}
	if !p.playing && p.buffered >= p.StartThreshold {
		p.resume()
	}
}

func (p *Player) resume() {
	p.playing = true
	if p.started && p.stallStart != 0 {
		p.StallTime += p.eng.Now() - p.stallStart
		p.stallStart = 0
		if p.OnResume != nil {
			p.OnResume(p.eng.Now())
		}
	}
	p.started = true
	p.stop = p.eng.Every(p.interval(), p.tick)
}

func (p *Player) tick() {
	if p.buffered == 0 {
		// Underflow: stall and rebuffer.
		p.playing = false
		p.Stalls++
		p.stallStart = p.eng.Now()
		if p.OnStall != nil {
			p.OnStall(p.eng.Now())
		}
		p.stop()
		return
	}
	p.buffered--
	p.Displayed++
}

// Buffered reports the current playout-queue depth.
func (p *Player) Buffered() int { return p.buffered }

// Playing reports whether the display process is running.
func (p *Player) Playing() bool { return p.playing }

// Close stops the display process (end of session). Pending stall time is
// finalized.
func (p *Player) Close() {
	if p.playing && p.stop != nil {
		p.stop()
		p.playing = false
	}
	if p.stallStart != 0 {
		p.StallTime += p.eng.Now() - p.stallStart
		p.stallStart = 0
	}
}

// String summarizes playback quality.
func (p *Player) String() string {
	return fmt.Sprintf("player: displayed=%d stalls=%d stall-time=%v max-buffer=%d",
		p.Displayed, p.Stalls, p.StallTime, p.MaxBuffered)
}
