// Whole-system integration test: every substrate composed at once — host
// OSM talking I2O to a scheduler card, peer producer cards reading striped
// disks, DWCS pacing streams through a lossy switch to reliable-transport
// receivers feeding playout-buffered players, while web load hammers the
// host. The assertions are end-user-level: every admitted frame that the
// lossless path carries arrives in order, the viewers see no mid-stream
// glitches, and the NI numbers don't move when the host is loaded.
package repro

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/hostos"
	"repro/internal/i2o"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/webload"
)

func TestWholeSystem(t *testing.T) {
	eng := sim.NewEngine(2026)

	// --- Host: 2 CPUs under web load (shouldn't matter to the NI).
	sys := hostos.New(eng, 2, 10*sim.Millisecond)
	stopDaemons := webload.Daemons(eng, sys)
	gen := webload.NewGenerator(eng, sys, webload.TargetUtilization("45%", 45, 2))
	gen.Start()

	// --- Storage: striped spindles behind a producer card.
	var spindles []*disk.Disk
	for i := 0; i < 4; i++ {
		spindles = append(spindles, disk.New(eng, disk.DefaultSCSI("sp")))
	}
	stripe := &disk.StripedFS{Stripe: disk.NewStripe(spindles, 16<<10)}

	pci := bus.New(eng, bus.PCI("pci1"))
	prodCard := nic.New(eng, nic.Config{Name: "ni-disk", PCI: pci})
	prodCard.AttachDisk(spindles[0], stripe)
	schedCard := nic.New(eng, nic.Config{Name: "ni-sched", PCI: pci, CacheOn: true})

	// --- Network: switch with one unicast player and one multicast group.
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	schedCard.ConnectEthernet(netsim.Fast100(eng, "ni-sched-eth", sw))

	player := mpeg.NewPlayer(eng, 25, 8)
	viewer := netsim.NewClient(eng, "viewer")
	viewer.OnFrame = func(*netsim.Packet) { player.Receive() }
	sw.Attach("viewer", netsim.Fast100(eng, "sw-viewer", viewer))

	groupA := netsim.NewClient(eng, "ga")
	groupB := netsim.NewClient(eng, "gb")
	sw.Attach("ga", netsim.Fast100(eng, "sw-ga", groupA))
	sw.Attach("gb", netsim.Fast100(eng, "sw-gb", groupB))
	sw.JoinGroup("mcast", "ga")
	sw.JoinGroup("mcast", "gb")

	// --- Reliable transport over a lossy leg for a lossless control feed.
	var relSender *transport.Sender
	var relOrder []int64
	relSink := netsim.PortFunc(func(p *netsim.Packet) { relOrder = append(relOrder, p.Seq) })
	ackIn := netsim.PortFunc(func(p *netsim.Packet) { relSender.Deliver(p) })
	ackLink := netsim.Fast100(eng, "rel-ack", ackIn)
	relRecv := transport.NewReceiver(eng, relSink, ackLink, "ni-sched")
	lossyData := netsim.Fast100(eng, "rel-data", relRecv)
	lossyData.DropEvery = 6
	relSender = transport.NewSender(eng, lossyData, 8, 30*sim.Millisecond)

	// --- Scheduler extension, traced, driven over I2O from the host.
	ext, err := schedCard.LoadScheduler(nic.SchedulerConfig{EligibleEarly: 20 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ext.Trace = trace.New(eng, 8192)
	iop := i2o.NewIOP(eng, i2o.Config{Name: "ni-sched-iop", PCI: pci})
	if err := iop.AttachDevice(&i2o.VCMBridge{ID: 1, VCM: schedCard.VCM}); err != nil {
		t.Fatal(err)
	}
	osm := i2o.NewHostDriver(iop)

	T := 40 * sim.Millisecond
	addStream := func(id int, name string) {
		osm.Submit(1, i2o.FnPrivate, core.Instr{Ext: "dwcs", Op: "addStream", Arg: dwcs.StreamSpec{
			ID: id, Name: name, Period: T,
			Loss: fixed.New(1, 8), Lossy: true, BufCap: 64,
		}}, func(_ any, status uint8) {
			if status != i2o.StatusSuccess {
				t.Errorf("addStream %s over I2O: status %#x", name, status)
			}
		})
	}
	addStream(1, "movie")
	addStream(2, "mcast-feed")
	eng.RunUntil(5 * sim.Millisecond) // let the I2O round trips land

	const frames = 400
	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: frames, FPS: 25, GOPPattern: "IBBPBBPBB", MeanFrame: 3000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext.SpawnPeerProducer(prodCard, clip, 1, "viewer", T, 1)
	ext.SpawnPeerProducer(prodCard, clip, 2, "mcast", T, 1)

	// Lossless control feed rides the reliable transport alongside.
	for i := 0; i < 100; i++ {
		relSender.Send(&netsim.Packet{Dst: "rel", Bytes: 512})
	}

	// Mid-run disk fault.
	eng.At(6*sim.Second, func() { spindles[1].Degrade(3) })
	eng.At(10*sim.Second, func() { spindles[1].Degrade(1) })

	dur := sim.Time(frames)*T + 5*sim.Second
	eng.RunUntil(dur)
	player.Close()

	// --- End-user assertions.
	if viewer.Received != frames {
		t.Errorf("viewer received %d of %d frames", viewer.Received, frames)
	}
	if groupA.Received != frames || groupB.Received != frames {
		t.Errorf("multicast members received %d/%d of %d", groupA.Received, groupB.Received, frames)
	}
	if player.Displayed != frames {
		t.Errorf("player displayed %d of %d", player.Displayed, frames)
	}
	if player.Stalls > 1 { // the single end-of-stream underflow is expected
		t.Errorf("viewer saw %d stalls", player.Stalls)
	}
	if ext.Dropped != 0 {
		t.Errorf("scheduler dropped %d frames despite host load", ext.Dropped)
	}
	if len(relOrder) != 100 {
		t.Errorf("reliable feed delivered %d of 100", len(relOrder))
	}
	for i, seq := range relOrder {
		if seq != int64(i) {
			t.Fatalf("reliable feed out of order at %d", i)
		}
	}
	if relSender.Retransmits == 0 {
		t.Error("lossy leg should have forced retransmissions")
	}
	// The card's memory balance must close.
	if schedCard.Mem.Used() != 0 {
		t.Errorf("card leaked %d bytes", schedCard.Mem.Used())
	}
	// Host was genuinely busy; NI stayed clean.
	if sys.TotalUtilization() < 0.25 {
		t.Errorf("host utilization only %.0f%%", 100*sys.TotalUtilization())
	}
	// The trace recorded the lifecycle.
	if got := ext.Trace.ByKind(trace.KindDispatch); len(got) < frames {
		t.Errorf("trace recorded %d dispatches", len(got))
	}

	// And the stats round-trip over I2O agrees with the extension.
	var stats dwcs.StreamStats
	osm.Submit(1, i2o.FnPrivate, core.Instr{Ext: "dwcs", Op: "stats", Arg: 1},
		func(reply any, status uint8) {
			if status == i2o.StatusSuccess {
				stats = reply.(dwcs.StreamStats)
			}
		})
	// Stop the open-ended load sources so the engine can drain.
	gen.Stop()
	stopDaemons()
	eng.RunUntil(dur + sim.Second)
	if stats.Serviced != frames {
		t.Errorf("I2O stats report %d serviced, want %d", stats.Serviced, frames)
	}
}
