// Quickstart: schedule two media streams with DWCS in ~40 lines.
//
// One stream tolerates losing 1 frame in every window of 2; the other
// tolerates none. Both are backlogged; DWCS shares service according to the
// window constraints and adjusts each stream's current window as frames are
// serviced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/sim"
)

func main() {
	clock := sim.Time(0)
	sched := dwcs.New(dwcs.Config{
		WorkConserving: true, // dispatch as fast as we can drain
		Now:            func() sim.Time { return clock },
	})

	streams := []dwcs.StreamSpec{
		{ID: 1, Name: "lossy-video", Period: 40 * sim.Millisecond,
			Loss: fixed.New(1, 2), Lossy: true, BufCap: 16},
		{ID: 2, Name: "lossless-audio", Period: 40 * sim.Millisecond,
			Loss: fixed.New(0, 1), BufCap: 16},
	}
	for _, s := range streams {
		if err := sched.AddStream(s); err != nil {
			panic(err)
		}
	}

	// Producers enqueue a burst of frames on each stream.
	for i := 0; i < 6; i++ {
		sched.Enqueue(1, dwcs.Packet{Bytes: 4000})
		sched.Enqueue(2, dwcs.Packet{Bytes: 800})
	}

	fmt.Println("order  stream            deadline   window(x'/y')")
	for {
		d := sched.Schedule()
		if d.Packet == nil {
			break
		}
		x, y, _ := sched.Window(d.Packet.StreamID)
		name := streams[d.Packet.StreamID-1].Name
		fmt.Printf("%5d  %-16s  %8v   %d/%d\n",
			d.Packet.Seq, name, d.Packet.Deadline, x, y)
	}
	for _, s := range streams {
		st, _ := sched.Stats(s.ID)
		fmt.Printf("%s: serviced=%d dropped=%d violations=%d\n",
			s.Name, st.Serviced, st.Dropped, st.Violations)
	}
}
