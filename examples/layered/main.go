// Layered: map a clip's I/P/B frames onto three DWCS streams with
// decreasing protection, then squeeze the output below the full demand.
// DWCS's window constraints steer all the loss into the B layer while the
// reference frames sail through — the QoS behaviour that makes
// window-constrained scheduling the right tool for MPEG (§3.1.2).
//
//	go run ./examples/layered
package main

import (
	"fmt"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	rig := testbed.New(testbed.Options{Seed: 21})
	rig.AddClient("player")
	// A 10 Mbps bottleneck would be the realistic squeeze; here the squeeze
	// is the stream periods vs what we admit, so a plain scheduler NI works.
	_, ext := rig.AddSchedulerNI("ni-sched", 1, nic.SchedulerConfig{
		EligibleEarly: 2400 * sim.Microsecond,
	})
	diskCard, _ := rig.AddDiskNI("ni-disk", 1, 1<<20)

	clip := mpeg.GenerateDefault()
	iFrames, pFrames, bFrames := clip.ByType()
	fmt.Printf("clip: %d I / %d P / %d B frames\n", len(iFrames), len(pFrames), len(bFrames))

	// The NI ships ≈1090 frames/s (decision + dispatch + protocol stack
	// ≈ 0.92 ms each). Three layers at 2.4 ms periods demand 1250/s — a
	// 1.15× overload — while the layers' guaranteed minimum (100% of I +
	// 75% of P + 50% of B ≈ 940/s) still fits, so the window constraints
	// are feasible: the B layer must absorb the entire shortfall.
	T := 2400 * sim.Microsecond
	layers := []struct {
		id    int
		name  string
		loss  fixed.Frac
		lossy bool
	}{
		{1, "I (0/1, lossless)", fixed.New(0, 1), false},
		{2, "P (1/4)", fixed.New(1, 4), true},
		{3, "B (1/2)", fixed.New(1, 2), true},
	}
	for _, l := range layers {
		if err := ext.AddStream(dwcs.StreamSpec{
			ID: l.id, Name: l.name, Period: T, Loss: l.loss, Lossy: l.lossy, BufCap: 64,
		}); err != nil {
			panic(err)
		}
	}
	// Producers inject 2× faster than the layers are scheduled.
	ext.SpawnPeerProducer(diskCard, clipOf(clip, iFrames), 1, "player", T/2, 1<<30)
	ext.SpawnPeerProducer(diskCard, clipOf(clip, pFrames), 2, "player", T/2, 1<<30)
	ext.SpawnPeerProducer(diskCard, clipOf(clip, bFrames), 3, "player", T/2, 1<<30)

	rig.Run(60 * sim.Second)

	fmt.Println("layer               serviced  dropped  late  loss-fraction")
	for _, l := range layers {
		st, _ := ext.Sched.Stats(l.id)
		tot := st.Serviced + st.Dropped
		frac := 0.0
		if tot > 0 {
			frac = float64(st.Dropped) / float64(tot)
		}
		fmt.Printf("%-18s  %8d  %7d  %4d  %.2f\n", l.name, st.Serviced, st.Dropped, st.Late, frac)
	}
	fmt.Println("\nreference frames survive; the disposable B layer pays for the overload.")
}

// clipOf builds a sub-clip from a frame subset, keeping offsets into the
// original file.
func clipOf(c *mpeg.Clip, frames []mpeg.Frame) *mpeg.Clip {
	return &mpeg.Clip{Frames: frames, FPS: c.FPS, Bytes: c.Bytes}
}
