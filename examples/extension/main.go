// Extension: write a custom DVCM run-time extension (§2) and load it onto a
// simulated i960 RD card next to the media scheduler.
//
// The example extension is a frame-filter: it watches every packet the
// scheduler dispatches and counts frames per stream — the kind of
// "computation directly on the NI" the DVCM architecture exists for. Host
// code talks to it through DVCM communication instructions, paying the
// PCI programmed-I/O crossing cost.
//
//	go run ./examples/extension
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// frameCounter is a DVCM extension counting dispatched frames per stream.
type frameCounter struct {
	counts map[int]int64
}

func (f *frameCounter) Name() string { return "framecount" }

func (f *frameCounter) Attach(v *core.VCM) error {
	f.counts = make(map[int]int64)
	return nil
}

func (f *frameCounter) Invoke(op string, arg any) (any, error) {
	switch op {
	case "get":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("framecount: get wants int, got %T", arg)
		}
		return f.counts[id], nil
	case "reset":
		f.counts = make(map[int]int64)
		return nil, nil
	default:
		return nil, core.ErrBadOp
	}
}

func main() {
	eng := sim.NewEngine(3)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := nic.New(eng, nic.Config{Name: "ni0", PCI: pci, CacheOn: true})
	client := netsim.NewClient(eng, "player")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("player", netsim.Fast100(eng, "sw-player", client))
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", sw))

	// Load the stock media-scheduler extension plus our custom one.
	ext, err := card.LoadScheduler(nic.SchedulerConfig{EligibleEarly: 5 * sim.Millisecond})
	if err != nil {
		panic(err)
	}
	fc := &frameCounter{}
	if err := card.VCM.Register(fc); err != nil {
		panic(err)
	}
	ext.OnDispatch = func(p *dwcs.Packet) { fc.counts[p.StreamID]++ }

	// The cluster-wide machine routes instructions by node name.
	dvcm := core.NewDVCM()
	if err := dvcm.Attach(card.VCM); err != nil {
		panic(err)
	}
	fmt.Println("extensions loaded on ni0:", card.VCM.Extensions())

	// Host application: set up a stream and feed it through DVCM
	// instructions (each crossing is PIO on the PCI segment).
	must(dvcm.Invoke("ni0", core.Instr{Ext: "dwcs", Op: "addStream", Arg: dwcs.StreamSpec{
		ID: 1, Name: "s1", Period: 20 * sim.Millisecond,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: 32,
	}}))
	vcm, _ := dvcm.VCM("ni0")
	for i := 0; i < 25; i++ {
		vcm.InvokeAsync(core.Instr{Ext: "dwcs", Op: "enqueue", Arg: nic.EnqueueArgs{
			StreamID: 1, Packet: dwcs.Packet{Bytes: 2000, Payload: nic.AddrPayload("player")},
		}}, 8, nil)
	}
	eng.RunUntil(2 * sim.Second)

	count := must(dvcm.Invoke("ni0", core.Instr{Ext: "framecount", Op: "get", Arg: 1}))
	stats := must(dvcm.Invoke("ni0", core.Instr{Ext: "dwcs", Op: "stats", Arg: 1}))
	fmt.Printf("frames dispatched per the custom extension: %v\n", count)
	fmt.Printf("scheduler stats: %+v\n", stats)
	fmt.Printf("client received %d frames; PCI PIO writes: %d words\n",
		client.Received, pci.Stats.PIOWrites)
}

func must(v any, err error) any {
	if err != nil {
		panic(err)
	}
	return v
}
