// Cluster: the scalable media server of the paper's §1/§6 — a 4-node
// cluster (each node with two PCI segments, scheduler NIs, and disk-
// attached producer NIs) serving dozens of admitted streams through a
// system-area switch.
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine(16)
	cfgs := make([]cluster.NodeConfig, 4)
	for i := range cfgs {
		cfgs[i] = cluster.NodeConfig{
			Name:         fmt.Sprintf("node%d", i),
			Segments:     2,
			SchedulerNIs: 2,
			ProducerNIs:  2,
		}
	}
	c := cluster.New(eng, cfgs)

	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: 151, FPS: 30, GOPPattern: "IBBPBBPBB", MeanFrame: 5000, Seed: 1960,
	})
	if err != nil {
		panic(err)
	}

	// Admit a mix of standard and premium (lossless) streams.
	var clients []*netsim.Client
	admitted := 0
	for i := 0; i < 48; i++ {
		req := cluster.StreamRequest{
			Name:       fmt.Sprintf("s%d", i),
			Period:     160 * sim.Millisecond,
			FrameBytes: 5000,
			Loss:       fixed.New(1, 2),
			Lossy:      true,
		}
		if i%8 == 0 { // premium: no losses allowed
			req.Loss = fixed.New(0, 1)
			req.Lossy = false
		}
		p, err := c.Admit(req)
		if err != nil {
			fmt.Printf("request %d rejected: %v\n", i, err)
			continue
		}
		clients = append(clients, c.AttachClient(p))
		c.Start(p, clip, 80*sim.Millisecond, 1<<30)
		admitted++
	}

	dur := 20 * sim.Second
	eng.RunUntil(dur)

	var bytes, late int64
	for _, cl := range clients {
		bytes += cl.RecvBytes
		late += cl.Late
	}
	fmt.Printf("admitted %d streams on %d nodes\n", admitted, len(c.Nodes))
	fmt.Printf("aggregate goodput %.1f Mbps, late frames %d, SAN forwarded %d frames\n",
		float64(bytes*8)/dur.Seconds()/1e6, late, c.Switch.Forwarded)
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			fmt.Printf("  %-14s streams=%2d committed-cpu=%4.1f%% committed-link=%4.1f%% sent=%4d\n",
				s.Card.Name, s.Streams(), s.CPULoad()*100, s.LinkLoad()*100, s.Ext.Sent)
		}
	}
}
