// Loadimmunity: the paper's core demonstration (§4.2.3, Figures 6–10) —
// load a web server on the host while two MPEG streams play, with the DWCS
// scheduler either on the host CPU or on the i960 RD network interface.
//
// The host-based scheduler's bandwidth collapses and its queuing delay
// grows once web load pushes CPU utilization to 60%; the NI-based scheduler
// doesn't move.
//
//	go run ./examples/loadimmunity
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	dur := 100 * sim.Second
	fmt.Println("=== host-based DWCS (bound to CPU 0 with pbind) ===")
	fmt.Println("load        settle-bw s1   max qdelay s1   dropped")
	from, to := experiments.PeakWindow(dur)
	for _, pct := range []float64{0, 45, 60} {
		run := experiments.RunHostLoad(pct, dur)
		bw := run.SettleBW("s1", dur)
		if pct > 0 {
			bw = run.SettleBWWindow("s1", from, to)
		}
		fmt.Printf("%-10s  %9.0f bps  %11.1f s   %7d\n",
			run.Load, bw, run.QDelay["s1"].Max().Seconds(), run.Dropped)
	}

	fmt.Println()
	fmt.Println("=== NI-based DWCS (i960 RD card, own bus segment) ===")
	fmt.Println("load        settle-bw s1   max qdelay s1   dropped")
	for _, pct := range []float64{0, 60} {
		run := experiments.RunNILoad(pct, dur/2, false)
		fmt.Printf("%-10s  %9.0f bps  %11.1f s   %7d\n",
			run.Load, run.SettleBW("s1", dur/2), run.QDelay["s1"].Max().Seconds(), run.Dropped)
	}
	fmt.Println()
	fmt.Println("=== queuing-delay distribution, s1 (1s buckets) ===")
	host60 := experiments.RunHostLoad(60, dur)
	ni60 := experiments.RunNILoad(60, dur/2, false)
	for _, c := range []struct {
		name  string
		delay []sim.Time
	}{
		{"host @60% load", host60.QDelay["s1"].Delays},
		{"NI   @60% load", ni60.QDelay["s1"].Delays},
	} {
		h := stats.NewHistogram(2*sim.Second, 16)
		for _, d := range c.delay {
			h.Add(d)
		}
		fmt.Printf("%s (p90 ≤ %v):"+"\n"+"%s", c.name, h.Quantile(0.9), h)
	}

	fmt.Println()
	fmt.Println("The NI-based rows are identical under load: packet scheduling on the")
	fmt.Println("network interface is immune to host-CPU loading (paper §6).")
}
