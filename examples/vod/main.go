// VOD: a video-on-demand session end to end — striped NI-attached disks
// source a clip, the NI-resident DWCS scheduler paces it to a remote
// client, and a player model with a playout buffer displays it, counting
// stalls.
//
// Halfway through, one spindle of the stripe degrades 4× (remapped
// sectors), injecting a storage fault: the playout buffer and the
// scheduler's queue ride through it, and the report shows whether the
// viewer saw a glitch.
//
//	go run ./examples/vod
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine(12)

	// Storage: a 4-wide stripe of SCSI disks behind one producer card.
	var spindles []*disk.Disk
	for i := 0; i < 4; i++ {
		spindles = append(spindles, disk.New(eng, disk.DefaultSCSI(fmt.Sprintf("sp%d", i))))
	}
	stripe := disk.NewStripe(spindles, 16<<10)

	pci := bus.New(eng, bus.PCI("pci0"))
	src := nic.New(eng, nic.Config{Name: "ni-disk", PCI: pci})
	src.AttachDisk(spindles[0], &disk.StripedFS{Stripe: stripe})
	sched := nic.New(eng, nic.Config{Name: "ni-sched", PCI: pci, CacheOn: true})

	// Network: scheduler card → switch → client → player.
	client := netsim.NewClient(eng, "viewer")
	player := mpeg.NewPlayer(eng, 25, 8) // 25 fps display, 8-frame preroll
	var lastArrival sim.Time
	var stallTimes []sim.Time
	player.OnStall = func(at sim.Time) { stallTimes = append(stallTimes, at) }
	client.OnFrame = func(*netsim.Packet) {
		lastArrival = eng.Now()
		player.Receive()
	}
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("viewer", netsim.Fast100(eng, "sw-viewer", client))
	sched.ConnectEthernet(netsim.Fast100(eng, "ni-sched-eth", sw))

	ext, err := sched.LoadScheduler(nic.SchedulerConfig{EligibleEarly: 20 * sim.Millisecond})
	if err != nil {
		panic(err)
	}
	// A 25 fps clip scheduled at its native rate.
	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: 1000, FPS: 25, GOPPattern: "IBBPBBPBB", MeanFrame: 3000, Seed: 77,
	})
	if err != nil {
		panic(err)
	}
	T := 40 * sim.Millisecond
	if err := ext.AddStream(dwcs.StreamSpec{
		ID: 1, Name: "movie", Period: T,
		Loss: fixed.New(1, 8), Lossy: true, BufCap: 64,
	}); err != nil {
		panic(err)
	}
	prod := ext.SpawnPeerProducer(src, clip, 1, "viewer", T, 1)

	// Fault injection: spindle 2 starts remapping sectors at t=20s and
	// recovers at t=28s.
	eng.At(20*sim.Second, func() { spindles[2].Degrade(4) })
	eng.At(28*sim.Second, func() { spindles[2].Degrade(1) })

	dur := sim.Time(len(clip.Frames))*T + 5*sim.Second
	eng.RunUntil(dur)
	player.Close()

	fmt.Printf("clip: %d frames at %d fps (%d bytes)\n", len(clip.Frames), clip.FPS, clip.Bytes)
	fmt.Printf("producer: injected=%d stalled=%d\n", prod.Injected, prod.Stalled)
	fmt.Printf("scheduler: sent=%d dropped=%d\n", ext.Sent, ext.Dropped)
	fmt.Printf("client: %s\n", client)
	fmt.Printf("%s\n", player)
	// A stall after the last frame arrived is just the end of the movie.
	glitches := 0
	for _, at := range stallTimes {
		if at < lastArrival {
			glitches++
		}
	}
	if glitches == 0 {
		fmt.Println("verdict: the disk fault was fully absorbed by buffering — no visible glitch")
	} else {
		fmt.Printf("verdict: viewer saw %d mid-stream glitch(es)\n", glitches)
	}
}
