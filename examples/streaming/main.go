// Streaming: compare the three frame-transfer paths of the paper's
// Figure 3 on the simulated server.
//
//   - Path A: system disk → host CPU/filesystem → I/O bus → NI → network
//   - Path B: disk on one I2O card → PCI peer DMA → scheduler card → network
//   - Path C: disk on the scheduler card itself → network
//
// The example streams the same synthetic MPEG-1 clip down each path and
// reports per-frame latency and which server resources the frames touched —
// the paper's "traffic elimination" argument made concrete.
//
//	go run ./examples/streaming
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/rtos"
	"repro/internal/sim"
)

const frames = 200

func main() {
	clip := mpeg.GenerateDefault()
	fmt.Println("path  per-frame   host-bus-bytes  pci-bytes   note")
	a := pathA(clip)
	b := pathB(clip)
	c := pathC(clip)
	fmt.Printf("A     %8.2f ms  %14d  %9d   host CPU + memory in the loop\n", a.perFrame, a.sysBytes, a.pciBytes)
	fmt.Printf("B     %8.2f ms  %14d  %9d   host eliminated; PCI peer DMA\n", b.perFrame, b.sysBytes, b.pciBytes)
	fmt.Printf("C     %8.2f ms  %14d  %9d   host and I/O bus eliminated\n", c.perFrame, c.sysBytes, c.pciBytes)
}

type result struct {
	perFrame float64 // ms
	sysBytes int64
	pciBytes int64
}

// rig builds the shared client side.
func rig(eng *sim.Engine) (*netsim.Switch, *netsim.Client) {
	client := netsim.NewClient(eng, "player")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("player", netsim.Fast100(eng, "sw-player", client))
	return sw, client
}

func pathA(clip *mpeg.Clip) result {
	eng := sim.NewEngine(1)
	sw, _ := rig(eng)
	hostLink := netsim.Fast100(eng, "host-eth", sw)

	d := disk.New(eng, disk.DefaultSCSI("sys-disk"))
	fs := disk.NewUFS(eng, d)
	pci := bus.New(eng, bus.PCI("pci0"))
	sysb := bus.New(eng, bus.SystemBus("sysbus"))
	bridge := bus.NewBridge(eng, pci, sysb, 500*sim.Nanosecond)
	stack := netsim.HostStack()

	n := 0
	var step func()
	step = func() {
		if n == frames {
			return
		}
		f := clip.Frames[n%len(clip.Frames)]
		fs.Read(f.Offset, f.Size, func() {
			bridge.Transfer(pci, f.Size, func() {
				eng.After(stack.Tx, func() {
					hostLink.Send(&netsim.Packet{Dst: "player", Bytes: f.Size}, nil)
					n++
					step()
				})
			})
		})
	}
	step()
	eng.Run()
	return result{
		perFrame: eng.Now().Milliseconds() / frames,
		sysBytes: sysb.Stats.DMABytes,
		pciBytes: pci.Stats.DMABytes,
	}
}

func pathB(clip *mpeg.Clip) result {
	eng := sim.NewEngine(1)
	sw, _ := rig(eng)
	pci := bus.New(eng, bus.PCI("pci0"))
	src := nic.New(eng, nic.Config{Name: "ni-disk", PCI: pci})
	d := disk.New(eng, disk.DefaultSCSI("d0"))
	src.AttachDisk(d, disk.NewDOSFS(d))
	tx := nic.New(eng, nic.Config{Name: "ni-tx", PCI: pci, CacheOn: true})
	tx.ConnectEthernet(netsim.Fast100(eng, "ni-tx-eth", sw))

	var doneAt sim.Time
	tx.SpawnPeerRelay(src, clip, "player", 0, frames, func() { doneAt = eng.Now() })
	eng.Run()
	return result{
		perFrame: doneAt.Milliseconds() / frames,
		pciBytes: pci.Stats.DMABytes,
	}
}

func pathC(clip *mpeg.Clip) result {
	eng := sim.NewEngine(1)
	sw, _ := rig(eng)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := nic.New(eng, nic.Config{Name: "ni0", PCI: pci})
	d := disk.New(eng, disk.DefaultSCSI("d0"))
	card.AttachDisk(d, disk.NewDOSFS(d))
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", sw))

	var doneAt sim.Time
	card.Kernel.Spawn("relay", nic.PrioRelay, func(tc *rtos.TaskCtx) {
		for i := 0; i < frames; i++ {
			f := clip.Frames[i%len(clip.Frames)]
			tc.Await(func(cb func()) { card.FS.Read(f.Offset, f.Size, cb) })
			card.Send(tc, &netsim.Packet{Src: card.Name, Dst: "player", Bytes: f.Size})
		}
		doneAt = tc.Now()
	})
	eng.Run()
	return result{
		perFrame: doneAt.Milliseconds() / frames,
		pciBytes: pci.Stats.DMABytes,
	}
}
