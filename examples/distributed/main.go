// Distributed: the cluster-wide DVCM of Figure 2 — an application on node A
// drives the media scheduler running on node B's network interface purely
// through remote communication instructions over the system-area network,
// then reads back statistics and reconfigures the stream mid-flight.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	rig := testbed.New(testbed.Options{Seed: 33})
	client := rig.AddClient("player")
	schedCard, ext := rig.AddSchedulerNI("node-b/ni", 1, nic.SchedulerConfig{
		EligibleEarly: 10 * sim.Millisecond,
	})
	diskCard, _ := rig.AddDiskNI("node-b/disk", 1, 0)

	// Node B's NI joins the distributed machine; node A is a pure client.
	dvcmnet.Attach(rig.Eng, rig.Switch, "node-b", schedCard.VCM)
	appA := dvcmnet.Attach(rig.Eng, rig.Switch, "node-a", nil)

	must := func(op string, in core.Instr) {
		appA.Invoke("node-b", in, func(_ any, err error) {
			if err != nil {
				panic(op + ": " + err.Error())
			}
			fmt.Printf("%-12s acknowledged at %v\n", op, rig.Eng.Now())
		})
	}

	must("addStream", core.Instr{Ext: "dwcs", Op: "addStream", Arg: dwcs.StreamSpec{
		ID: 1, Name: "movie", Period: 40 * sim.Millisecond,
		Loss: fixed.New(1, 4), Lossy: true, BufCap: 64,
	}})
	rig.Run(5 * sim.Millisecond)

	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 150, FPS: 25, GOPPattern: "IBBPBB", MeanFrame: 2500, Seed: 4})
	ext.SpawnPeerProducer(diskCard, clip, 1, "player", 40*sim.Millisecond, 1)

	// Half way through, node A halves the stream rate remotely — the
	// network-near reconfiguration of §3.1, driven from across the cluster.
	rig.Eng.At(3*sim.Second, func() {
		must("reconfigure", core.Instr{Ext: "dwcs", Op: "reconfigure", Arg: nic.ReconfigureArgs{
			StreamID: 1, Period: 80 * sim.Millisecond, Loss: fixed.New(1, 4),
		}})
	})

	rig.Run(15 * sim.Second)

	appA.Invoke("node-b", core.Instr{Ext: "dwcs", Op: "stats", Arg: 1},
		func(res any, err error) {
			if err != nil {
				panic(err)
			}
			fmt.Printf("remote stats: %+v\n", res)
		})
	rig.Run(16 * sim.Second)

	fmt.Printf("player received %d frames; remote invocations issued: %d\n",
		client.Received, appA.Issued)
}
