// Command clustersim drives the scalable-server architecture of §6 and the
// paper's future-work study: bandwidth allocation for a large number of
// streams across scheduler and producer NIs.
//
// Usage:
//
//	clustersim -streams 40                     # admit, stream, report
//	clustersim -nodes 4 -schedulers 3 -streams 200
//	clustersim -sweep                          # capacity/goodput vs demand
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 1, "cluster nodes")
	segments := flag.Int("segments", 2, "PCI segments per node")
	schedulers := flag.Int("schedulers", 2, "scheduler NIs per node")
	producers := flag.Int("producers", 2, "producer NIs per node")
	streams := flag.Int("streams", 16, "streams to request")
	periodMs := flag.Int("period", 160, "stream period (ms)")
	frame := flag.Int64("frame", 5000, "nominal frame bytes")
	durSec := flag.Int("dur", 30, "streaming duration (seconds)")
	sweep := flag.Bool("sweep", false, "sweep requested stream count and report capacity")
	flag.Parse()

	cfgs := make([]cluster.NodeConfig, *nodes)
	for i := range cfgs {
		cfgs[i] = cluster.NodeConfig{
			Name:         fmt.Sprintf("node%d", i),
			Segments:     *segments,
			SchedulerNIs: *schedulers,
			ProducerNIs:  *producers,
		}
	}
	req := cluster.StreamRequest{
		Name:       "s",
		Period:     sim.Time(*periodMs) * sim.Millisecond,
		FrameBytes: *frame,
		Loss:       fixed.New(1, 2),
		Lossy:      true,
	}

	if *sweep {
		runSweep(cfgs, req)
		return
	}

	eng := sim.NewEngine(7)
	c := cluster.New(eng, cfgs)
	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: 151, FPS: 30, GOPPattern: "IBBPBBPBB",
		MeanFrame: *frame, Seed: 1960,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}

	type placed struct {
		p  *cluster.Placement
		cl *netsim.Client
	}
	var admitted []placed
	for i := 0; i < *streams; i++ {
		r := req
		r.Name = fmt.Sprintf("s%d", i)
		p, err := c.Admit(r)
		if err != nil {
			fmt.Printf("stream %d rejected: %v\n", i, err)
			break
		}
		cl := c.AttachClient(p)
		c.Start(p, clip, req.Period/2, 1<<30)
		admitted = append(admitted, placed{p, cl})
	}
	dur := sim.Time(*durSec) * sim.Second
	eng.RunUntil(dur)

	fmt.Printf("admitted %d/%d streams across %d node(s)\n", len(admitted), *streams, *nodes)
	var totalBytes, totalLate int64
	for _, a := range admitted {
		totalBytes += a.cl.RecvBytes
		totalLate += a.cl.Late
	}
	fmt.Printf("aggregate goodput: %.1f kbps, late frames: %d\n",
		float64(totalBytes*8)/dur.Seconds()/1000, totalLate)
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			st := s.Ext
			verdict := "—"
			if rep, err := s.Feasibility(); err == nil {
				verdict = fmt.Sprintf("qos: link %.1f%% cpu %.1f%%", 100*rep.LinkUtilization, 100*rep.CPUUtilization)
			} else {
				verdict = "qos: " + err.Error()
			}
			fmt.Printf("  %-16s streams=%d cpu=%.0f%% link=%.0f%% sent=%d dropped=%d  [%s]\n",
				s.Card.Name, s.Streams(), s.CPULoad()*100, s.LinkLoad()*100, st.Sent, st.Dropped, verdict)
		}
	}
}

func runSweep(cfgs []cluster.NodeConfig, req cluster.StreamRequest) {
	// Each sweep cell binary-searches admission on a private cluster; fan
	// the grid across the worker pool and print rows in grid order.
	type cell struct {
		periodMs int
		frame    int64
	}
	var cells []cell
	for _, periodMs := range []int{40, 80, 160, 320} {
		for _, frame := range []int64{1500, 5000, 15000} {
			cells = append(cells, cell{periodMs, frame})
		}
	}
	jobs := make([]func() int, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() int {
			r := req
			r.Period = sim.Time(c.periodMs) * sim.Millisecond
			r.FrameBytes = c.frame
			return cluster.Capacity(cfgs, r)
		}
	}
	caps := experiments.Collect(jobs)
	fmt.Println("period_ms  frame_B  capacity(streams)  committed_bw_kbps")
	for i, c := range cells {
		n := caps[i]
		bw := float64(n) * float64(c.frame*8) / (float64(c.periodMs) / 1000) / 1000
		fmt.Printf("%9d  %7d  %17d  %17.0f\n", c.periodMs, c.frame, n, bw)
	}
}
