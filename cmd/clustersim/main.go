// Command clustersim drives the scalable-server architecture of §6 and the
// paper's future-work study: bandwidth allocation for a large number of
// streams across scheduler and producer NIs.
//
// Usage:
//
//	clustersim -streams 40                     # admit, stream, report
//	clustersim -nodes 4 -schedulers 3 -streams 200
//	clustersim -sweep                          # capacity/goodput vs demand
//	clustersim -chaos                          # generated fault schedule +
//	                                           # heartbeat failover
//	clustersim -overload                       # arm per-card overload control;
//	                                           # with -chaos, adds a mem-leak
//	                                           # fault to the schedule
//	clustersim -telemetry                      # instrument the run; write
//	                                           # trace/metrics artifacts
//	clustersim -slo                            # per-card SLO monitors and a
//	                                           # health table; with -chaos, a
//	                                           # burning card is failed over
//	                                           # early even while its heartbeat
//	                                           # still answers
//	clustersim -fleet -cards 64 -workers 8     # partitioned multi-card fleet
//	                                           # on the parallel engine;
//	                                           # artifacts are byte-identical
//	                                           # at any -workers count
//	clustersim -fleet-chaos                    # correlated failure domains on
//	                                           # the fleet: host crashes, switch
//	                                           # partitions, rolling drains, and
//	                                           # live stream migration; same
//	                                           # byte-identical contract
//	clustersim -fleet-chaos -chaos-sweep       # severity × fleet-size recovery
//	                                           # table
//	clustersim -fleet-obs -cards 64            # in-band observability plane
//	                                           # over the chaos fleet: DVCM
//	                                           # metric scraping, fleet rollups,
//	                                           # merged incident timeline, and
//	                                           # cross-migration trace stitching;
//	                                           # same byte-identical contract
//	clustersim -ctrl-chaos -dur 8              # replicated DVCM control plane
//	                                           # under controller faults: the
//	                                           # primary is killed mid-migration
//	                                           # and the replica pair is split;
//	                                           # the standby fences the fleet,
//	                                           # reconciles its journal, and
//	                                           # takes over; same byte-identical
//	                                           # contract
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	nodes := flag.Int("nodes", 1, "cluster nodes")
	segments := flag.Int("segments", 2, "PCI segments per node")
	schedulers := flag.Int("schedulers", 2, "scheduler NIs per node")
	producers := flag.Int("producers", 2, "producer NIs per node")
	streams := flag.Int("streams", 16, "streams to request")
	periodMs := flag.Int("period", 160, "stream period (ms)")
	frame := flag.Int64("frame", 5000, "nominal frame bytes")
	durSec := flag.Int("dur", 30, "streaming duration (seconds)")
	sweep := flag.Bool("sweep", false, "sweep requested stream count and report capacity")
	chaos := flag.Bool("chaos", false, "arm a generated chaos schedule with heartbeat failover")
	chaosSeed := flag.Int64("chaos-seed", 7, "chaos plan seed (with -chaos)")
	overloadOn := flag.Bool("overload", false, "arm overload protection on every scheduler NI")
	telemetryOn := flag.Bool("telemetry", false, "instrument the run and write observability artifacts")
	telemetryOut := flag.String("telemetry-out", "telemetry-out", "directory for -telemetry artifacts")
	sloOn := flag.Bool("slo", false, "run an SLO monitor per scheduler NI; with -chaos, burning cards fail over early")
	fleet := flag.Bool("fleet", false, "run the partitioned multi-card fleet on the parallel engine")
	cards := flag.Int("cards", 8, "card complexes in the fleet (with -fleet)")
	fleetStreams := flag.Int("fleet-streams", 2, "streams sourced per card (with -fleet)")
	workers := flag.Int("workers", 0, "parallel-engine worker pool; 0 = GOMAXPROCS, 1 = sequential")
	fleetOut := flag.String("fleet-out", "", "directory for -fleet artifacts (empty = stdout only)")
	fleetChaos := flag.Bool("fleet-chaos", false, "inject correlated failure domains into the fleet and migrate streams live")
	hostCrashes := flag.Int("host-crashes", 0, "host-crash faults to draw (with -fleet-chaos); 0 = default, negative = none")
	netPartitions := flag.Int("net-partitions", 0, "switch-partition faults to draw (with -fleet-chaos); 0 = default, negative = none")
	rollingDrains := flag.Int("rolling-drains", 0, "rolling-drain faults to draw (with -fleet-chaos); 0 = default, negative = none")
	faultSeed := flag.Int64("fault-seed", 0, "chaos plan seed (with -fleet-chaos); 0 = derived from the fleet seed")
	chaosSweep := flag.Bool("chaos-sweep", false, "render the severity × fleet-size recovery table (with -fleet-chaos)")
	fleetObs := flag.Bool("fleet-obs", false, "scrape the chaos fleet in-band: rollups, incident timeline, stitched traces")
	ctrlChaos := flag.Bool("ctrl-chaos", false, "replicate the DVCM controller and inject controller crashes/partitions into the chaos fleet")
	ctrlCrashes := flag.Int("ctrl-crashes", 0, "controller-crash faults to draw (with -ctrl-chaos); 0 = default, negative = none")
	ctrlPartitions := flag.Int("ctrl-partitions", 0, "replica-pair partition faults to draw (with -ctrl-chaos); 0 = default, negative = none")
	scrapeEvery := flag.Int("scrape-every", 0, "controller scrape interval in ms (with -fleet-obs); 0 = default 200")
	topK := flag.Int("topk", 0, "top-k streams by loss-window pressure (with -fleet-obs); 0 = default 8")
	stressPct := flag.Int("stress-pct", 0, "fill every card's budget to this %% mid-run to exercise scrape shedding (with -fleet-obs); 0 = off")
	flag.Parse()
	experiments.DefaultWorkers = *workers

	if *fleetObs {
		runFleetObs(experiments.FleetObsConfig{
			Cards: *cards, StreamsPerCard: *fleetStreams,
			Dur: sim.Time(*durSec) * sim.Second, Workers: *workers,
			ScrapeEvery: sim.Time(*scrapeEvery) * sim.Millisecond, TopK: *topK,
			HostCrashes: *hostCrashes, NetPartitions: *netPartitions,
			RollingDrains: *rollingDrains, FaultSeed: *faultSeed,
			StressPct: *stressPct,
		}, *fleetOut)
		return
	}
	if *ctrlChaos {
		runCtrlChaos(experiments.CtrlChaosConfig{
			Cards: *cards, StreamsPerCard: *fleetStreams,
			Dur: sim.Time(*durSec) * sim.Second, Workers: *workers,
			HostCrashes: *hostCrashes, NetPartitions: *netPartitions,
			RollingDrains: *rollingDrains, FaultSeed: *faultSeed,
			CtrlCrashes: *ctrlCrashes, CtrlPartitions: *ctrlPartitions,
		}, *fleetOut)
		return
	}
	if *fleetChaos {
		runFleetChaos(experiments.FleetChaosConfig{
			Cards: *cards, StreamsPerCard: *fleetStreams,
			Dur: sim.Time(*durSec) * sim.Second, Workers: *workers,
			HostCrashes: *hostCrashes, NetPartitions: *netPartitions,
			RollingDrains: *rollingDrains, FaultSeed: *faultSeed,
		}, *chaosSweep, *fleetOut)
		return
	}
	if *fleet {
		runFleet(*cards, *fleetStreams, *durSec, *workers, *fleetOut)
		return
	}

	cfgs := make([]cluster.NodeConfig, *nodes)
	for i := range cfgs {
		cfgs[i] = cluster.NodeConfig{
			Name:         fmt.Sprintf("node%d", i),
			Segments:     *segments,
			SchedulerNIs: *schedulers,
			ProducerNIs:  *producers,
		}
	}
	req := cluster.StreamRequest{
		Name:       "s",
		Period:     sim.Time(*periodMs) * sim.Millisecond,
		FrameBytes: *frame,
		Loss:       fixed.New(1, 2),
		Lossy:      true,
	}

	if *sweep {
		runSweep(cfgs, req)
		return
	}

	eng := sim.NewEngine(7)
	c := cluster.New(eng, cfgs)
	if *overloadOn {
		c.EnableOverload(nil)
	}
	var reg *telemetry.Registry
	if *telemetryOn {
		reg = telemetry.New()
		c.Instrument(reg)
		reg.SnapshotEvery(eng, sim.Second)
	}
	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: 151, FPS: 30, GOPPattern: "IBBPBBPBB",
		MeanFrame: *frame, Seed: 1960,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}

	type placed struct {
		p  *cluster.Placement
		cl *netsim.Client
	}
	dur := sim.Time(*durSec) * sim.Second
	var admitted []placed
	for i := 0; i < *streams; i++ {
		r := req
		r.Name = fmt.Sprintf("s%d", i)
		p, err := c.Admit(r)
		if err != nil {
			fmt.Printf("stream %d rejected: %v\n", i, err)
			break
		}
		cl := c.AttachClient(p)
		if *chaos {
			cl.BW = stats.NewBandwidthMeter(r.Name, 2*sim.Second)
		}
		c.Start(p, clip, req.Period/2, 1<<30)
		admitted = append(admitted, placed{p, cl})
	}

	// Per-card SLO monitors: each card's monitor reads burn rates off the
	// DWCS loss windows of the streams placed on it. Stats freeze at the last
	// observed value when a stream leaves the card (failover, revocation), so
	// the windows stay monotone.
	var sloMons map[string]*slo.Monitor
	if *sloOn {
		sloMons = make(map[string]*slo.Monitor)
		for _, a := range admitted {
			p := a.p
			m := sloMons[p.Scheduler.Card.Name]
			if m == nil {
				m = slo.NewMonitor(p.Scheduler.Card.Name, slo.Config{})
				m.Start(eng)
				sloMons[p.Scheduler.Card.Name] = m
			}
			sched, id := p.Scheduler.Ext.Sched, p.StreamID
			var lastA, lastL int64
			m.Track(slo.FromSpec(dwcs.StreamSpec{
				ID: id, Name: p.Req.Name, Loss: p.Req.Loss,
			}, 2*p.Req.Period), func() (int64, int64) {
				if st, err := sched.Stats(id); err == nil {
					lastA, lastL = st.Attempts(), st.Losses()
				}
				return lastA, lastL
			})
		}
	}

	var mon *cluster.Monitor
	var chaosLog *faults.Log
	if *chaos {
		mon, chaosLog = armChaos(c, clip, req, *chaosSeed, dur, *overloadOn)
		if *sloOn {
			// Early failover: a card whose SLO monitor reports it burning is
			// treated as a missed heartbeat even while it still answers. The
			// Misses hysteresis still applies, so one hot eval window cannot
			// bounce a card.
			mon.Unhealthy = func(s *cluster.SchedulerNI) bool {
				m := sloMons[s.Card.Name]
				return m != nil && m.Health() >= slo.StateBurning
			}
		}
	}
	eng.RunUntil(dur)
	if mon != nil {
		mon.Stop()
	}
	for _, m := range sloMons {
		m.Stop()
	}

	fmt.Printf("admitted %d/%d streams across %d node(s)\n", len(admitted), *streams, *nodes)
	var totalBytes, totalLate int64
	for _, a := range admitted {
		totalBytes += a.cl.RecvBytes
		totalLate += a.cl.Late
	}
	fmt.Printf("aggregate goodput: %.1f kbps, late frames: %d\n",
		float64(totalBytes*8)/dur.Seconds()/1000, totalLate)
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			st := s.Ext
			verdict := "—"
			if rep, err := s.Feasibility(); err == nil {
				verdict = fmt.Sprintf("qos: link %.1f%% cpu %.1f%%", 100*rep.LinkUtilization, 100*rep.CPUUtilization)
			} else {
				verdict = "qos: " + err.Error()
			}
			fmt.Printf("  %-16s streams=%d cpu=%.0f%% link=%.0f%% sent=%d dropped=%d  [%s]\n",
				s.Card.Name, s.Streams(), s.CPULoad()*100, s.LinkLoad()*100, st.Sent, st.Dropped, verdict)
		}
	}

	if *chaos {
		fmt.Printf("monitor: probes=%d detected=%d failovers=%d recovered=%d\n",
			mon.Probes, mon.Detected, mon.Failovers, mon.Recovered)
		fmt.Print("chaos timeline:\n", chaosLog.String())
		fmt.Println("per-stream bandwidth through fail→recover (kbps, 2s samples):")
		for _, a := range admitted {
			a.cl.BW.FlushUntil(dur)
			var b strings.Builder
			for _, pt := range a.cl.BW.Series.Points {
				fmt.Fprintf(&b, " %4.0f", pt.Value/1000)
			}
			fmt.Printf("  %-4s│%s\n", a.p.Req.Name, b.String())
		}
		fmt.Println("DWCS violations per live stream:")
		for _, p := range c.Live() {
			st, err := p.Scheduler.Ext.Sched.Stats(p.StreamID)
			if err != nil {
				continue
			}
			fmt.Printf("  %-4s on %-16s violations=%d\n",
				p.Req.Name, p.Scheduler.Card.Name, st.Violations)
		}
	}

	if *overloadOn {
		fmt.Println("overload pressure per scheduler NI:")
		for _, n := range c.Nodes {
			for _, s := range n.Schedulers {
				ctl := s.Overload
				if ctl == nil {
					continue
				}
				b := ctl.Budget
				fmt.Printf("  %-16s rung=%-7s used=%d/%d peak=%d rejects=%d breaches=%d shed=%d dropB=%d dropP=%d revoked=%d reinstated=%d\n",
					s.Card.Name, ctl.Ladder.Rung(), b.Used(), b.Size(), b.Peak(),
					b.Rejects, b.Breaches, ctl.ShedTolerantFrames, ctl.ShedBFrames,
					ctl.ShedPFrames, ctl.Revoked, ctl.Reinstated)
			}
		}
	}

	if *sloOn {
		fmt.Println("SLO health per scheduler NI:")
		names := make([]string, 0, len(sloMons))
		for name := range sloMons {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(sloMons[name].Table())
		}
		if mon != nil {
			fmt.Printf("monitor: slo_fails=%d (burning cards treated as missed heartbeats)\n", mon.SLOFails)
		}
	}

	if reg != nil {
		if err := writeTelemetry(*telemetryOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Print(reg.Spans.StageTable())
		fmt.Printf("telemetry artifacts written to %s (%d components, %d spans, %d snapshots)\n",
			*telemetryOut, len(reg.Components()), reg.Spans.Len(), reg.Snapshots())
	}
}

// runFleet drives the partitioned multi-card fleet on the parallel engine.
// Everything printed to stdout and written under -fleet-out is
// byte-identical at any -workers count (and to a monolithic single-engine
// run); engine-internal diagnostics go to stderr so CI can diff stdout.
func runFleet(cards, streamsPerCard, durSec, workers int, outDir string) {
	a := experiments.RunFleet(experiments.FleetConfig{
		Cards: cards, StreamsPerCard: streamsPerCard,
		Dur: sim.Time(durSec) * sim.Second, Workers: workers,
	})
	fmt.Println(a.Summary)
	fmt.Print(a.Table)
	fmt.Print(a.Pulse)
	fmt.Fprintf(os.Stderr, "fleet: %d synchronization rounds (workers=%d)\n", a.Rounds, workers)
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	for name, body := range map[string]string{
		"summary.txt": a.Summary + "\n",
		"table.txt":   a.Table,
		"pulse.txt":   a.Pulse,
		"streams.csv": a.CSV,
	} {
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet artifacts written to %s\n", outDir)
}

// runFleetChaos injects a correlated chaos plan — host crashes, switch
// partitions, rolling drains — into the partitioned fleet and lets the
// controller migrate streams live. Everything printed to stdout and written
// under -fleet-out is byte-identical at any -workers count (and to a
// monolithic run); engine diagnostics go to stderr so CI can diff stdout.
func runFleetChaos(cfg experiments.FleetChaosConfig, sweep bool, outDir string) {
	if sweep {
		fmt.Print(experiments.FleetChaosSweep(cfg.Workers))
		return
	}
	a := experiments.RunFleetChaos(cfg)
	fmt.Println(a.Plan)
	fmt.Println(a.Summary)
	fmt.Print(a.Table)
	fmt.Print(a.Recovery)
	fmt.Print(a.Violations)
	fmt.Fprintf(os.Stderr, "fleet-chaos: %d synchronization rounds (workers=%d)\n",
		a.Rounds, cfg.Workers)
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	for name, body := range map[string]string{
		"plan.txt":       a.Plan + "\n",
		"summary.txt":    a.Summary + "\n",
		"table.txt":      a.Table,
		"pulse.txt":      a.Pulse,
		"migrations.txt": a.MigLog,
		"recovery.txt":   a.Recovery,
		"violations.txt": a.Violations,
		"streams.csv":    a.CSV,
	} {
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet-chaos artifacts written to %s\n", outDir)
}

// runCtrlChaos drives the replicated DVCM control plane under controller
// faults: the primary replica journals placements and checkpoints to a
// standby, the fault plan kills the primary mid-migration and later severs
// the replica pair, and the standby fences the cards, reconciles its journal
// against their reported state, and takes over. Everything printed to stdout
// and written under -fleet-out is byte-identical at any -workers count (and
// to a monolithic run); engine diagnostics go to stderr so CI can diff
// stdout. The incident timeline keeps the timeline.txt name so tracetool
// -timeline parses it unchanged.
func runCtrlChaos(cfg experiments.CtrlChaosConfig, outDir string) {
	a := experiments.RunCtrlChaos(cfg)
	fmt.Println(a.Chaos.Plan)
	fmt.Println(a.Chaos.Summary)
	fmt.Println(a.HASummary)
	fmt.Print(a.CtrlPlane)
	fmt.Print(excerpt(a.HATimeline, 18))
	fmt.Print(a.Chaos.Recovery)
	fmt.Print(a.Chaos.Violations)
	fmt.Fprintf(os.Stderr, "ctrl-chaos: %d synchronization rounds (workers=%d)\n",
		a.Chaos.Rounds, cfg.Workers)
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	for name, body := range map[string]string{
		"plan.txt":       a.Chaos.Plan + "\n",
		"summary.txt":    a.Chaos.Summary + "\n" + a.HASummary + "\n",
		"ctrlplane.txt":  a.CtrlPlane,
		"timeline.txt":   a.HATimeline,
		"table.txt":      a.Chaos.Table,
		"pulse.txt":      a.Chaos.Pulse,
		"migrations.txt": a.Chaos.MigLog,
		"recovery.txt":   a.Chaos.Recovery,
		"violations.txt": a.Chaos.Violations,
		"streams.csv":    a.Chaos.CSV,
	} {
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "ctrl-chaos artifacts written to %s\n", outDir)
}

// runFleetObs drives the in-band observability plane over the chaos fleet:
// the controller partition scrapes every card across the simulated DVCM
// links, reply buffers are charged to each card's overload budget, and the
// controller renders rollups, the merged incident timeline, and the
// cross-migration stitched traces. Everything printed to stdout and written
// under -fleet-out is byte-identical at any -workers count (and to a
// monolithic run); engine diagnostics go to stderr so CI can diff stdout.
func runFleetObs(cfg experiments.FleetObsConfig, outDir string) {
	a := experiments.RunFleetObs(cfg)
	fmt.Println(a.Summary)
	fmt.Println(a.Chaos.Summary)
	fmt.Print(a.Rollup)
	fmt.Print(a.TopK)
	fmt.Print(a.ScrapeStats)
	fmt.Print(excerpt(a.Timeline, 14))
	fmt.Print(a.Stitched)
	fmt.Fprintf(os.Stderr, "fleet-obs: %d synchronization rounds (workers=%d)\n",
		a.Chaos.Rounds, cfg.Workers)
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	for name, body := range map[string]string{
		"summary.txt":    a.Summary + "\n" + a.Chaos.Summary + "\n",
		"rollup.txt":     a.Rollup,
		"timeline.txt":   a.Timeline,
		"topk.txt":       a.TopK,
		"scrape.txt":     a.ScrapeStats,
		"stitched.txt":   a.Stitched,
		"plan.txt":       a.Chaos.Plan + "\n",
		"table.txt":      a.Chaos.Table,
		"pulse.txt":      a.Chaos.Pulse,
		"migrations.txt": a.Chaos.MigLog,
		"recovery.txt":   a.Chaos.Recovery,
		"violations.txt": a.Chaos.Violations,
		"streams.csv":    a.Chaos.CSV,
	} {
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet-obs artifacts written to %s\n", outDir)
}

// excerpt returns the first n lines of a rendered artifact plus an elision
// marker — enough of the incident timeline to read on a terminal without
// drowning stdout; the full artifact goes to -fleet-out. A deterministic
// prefix of a deterministic string, so the stdout contract still holds.
func excerpt(s string, n int) string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) <= n+1 {
		return s
	}
	return strings.Join(lines[:n], "") + fmt.Sprintf("  … %d more line(s); full timeline in -fleet-out\n", len(lines)-n-1)
}

// writeTelemetry dumps the registry's artifacts for an instrumented run.
func writeTelemetry(dir string, reg *telemetry.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	traceJSON, err := telemetry.MarshalChrome(reg.Spans.ChromeEvents())
	if err != nil {
		return err
	}
	files := []struct {
		name string
		body []byte
	}{
		{"trace.json", traceJSON},
		{"metrics.prom", []byte(reg.PrometheusText())},
		{"metrics.csv", []byte(reg.SnapshotsCSV())},
		{"stages.txt", []byte(reg.Spans.StageTable())},
		{"spans.folded", []byte(reg.Spans.Folded())},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.body, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// armChaos generates a seeded fault plan over the cluster's scheduler cards
// and producer disks, arms it on the engine, and starts the heartbeat
// monitor in auto-failover mode. Streams moved by a failover are restarted
// on their new placement (the orphaned producer on the dead card stops by
// itself). With overload protection armed the plan also draws a mem-leak
// event — MemLeak is appended after the pre-existing kinds in the generator,
// so the crash/stall prefix of the plan is byte-identical either way.
func armChaos(c *cluster.Cluster, clip *mpeg.Clip, req cluster.StreamRequest, seed int64, dur sim.Time, overloadOn bool) (*cluster.Monitor, *faults.Log) {
	cards := make(map[string]*nic.Card)
	disks := make(map[string]*disk.Disk)
	ctls := make(map[string]*overload.Controller)
	var cardNames, diskNames []string
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			cards[s.Card.Name] = s.Card
			cardNames = append(cardNames, s.Card.Name)
			if s.Overload != nil {
				ctls[s.Card.Name] = s.Overload
			}
		}
		for _, p := range n.Producers {
			cards[p.Card.Name] = p.Card
			disks[p.Card.Name] = p.Disk
			diskNames = append(diskNames, p.Card.Name)
		}
	}
	counts := map[faults.Kind]int{
		faults.CardCrash: 1,
		faults.DiskStall: 1,
	}
	if overloadOn {
		counts[faults.MemLeak] = 1
	}
	plan, err := faults.Generate(seed, faults.Spec{
		Start: dur / 4, Span: dur / 2,
		Cards: cardNames, Disks: diskNames,
		Counts:      counts,
		MinDuration: 2 * sim.Second, MaxDuration: 5 * sim.Second,
		MinFactor: 4, MaxFactor: 8,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	fmt.Print(plan)

	log := &faults.Log{}
	// MemLeak erodes the target card's overload budget at Factor KB/s while
	// the event is live. The leak draws through the card allocator, so it
	// consumes free memory but never breaches the absolute budget; recovery
	// stops the drip and reclaims every leaked byte.
	const leakTick = 100 * sim.Millisecond
	leakStops := make(map[string]func())
	err = plan.Arm(c.Eng, faults.InjectorFuncs{
		OnInject: func(e faults.Event) {
			switch e.Kind {
			case faults.CardCrash:
				cards[e.Target].Crash()
			case faults.TaskHang:
				cards[e.Target].HangHog(e.Duration)
			case faults.DiskStall:
				disks[e.Target].Degrade(e.Factor)
			case faults.MemLeak:
				ctl := ctls[e.Target]
				if ctl == nil {
					return
				}
				per := (e.Factor << 10) * int64(leakTick) / int64(sim.Second)
				leakStops[e.Target] = c.Eng.Every(leakTick, func() {
					n := per
					if free := ctl.Budget.Size() - ctl.Budget.Used(); free < n {
						n = free
					}
					if n > 0 {
						ctl.Budget.Leak(n)
					}
				})
			}
		},
		OnRecover: func(e faults.Event) {
			switch e.Kind {
			case faults.CardCrash:
				cards[e.Target].Reset()
			case faults.DiskStall:
				disks[e.Target].Degrade(1)
			case faults.MemLeak:
				if stop := leakStops[e.Target]; stop != nil {
					stop()
					delete(leakStops, e.Target)
				}
				if ctl := ctls[e.Target]; ctl != nil {
					fmt.Printf("%v: %s reclaimed %d leaked bytes\n",
						c.Eng.Now(), e.Target, ctl.Budget.ReclaimLeak())
				}
			}
		},
	}, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}

	mon := cluster.NewMonitor(c, "monitor")
	mon.Auto = true
	mon.OnFail = func(s *cluster.SchedulerNI, affected []*cluster.Placement) {
		fmt.Printf("%v: %s declared dead, %d stream(s) affected\n",
			c.Eng.Now(), s.Card.Name, len(affected))
	}
	mon.OnReadmit = func(old, now *cluster.Placement, err error) {
		if err != nil {
			fmt.Printf("%v: %s failover failed: %v\n", c.Eng.Now(), old.Req.Name, err)
			return
		}
		c.Start(now, clip, req.Period/2, 1<<30)
		fmt.Printf("%v: %s moved %s → %s\n", c.Eng.Now(), old.Req.Name,
			old.Scheduler.Card.Name, now.Scheduler.Card.Name)
	}
	mon.OnRecover = func(s *cluster.SchedulerNI) {
		fmt.Printf("%v: %s back in service\n", c.Eng.Now(), s.Card.Name)
	}
	mon.Start()
	return mon, log
}

func runSweep(cfgs []cluster.NodeConfig, req cluster.StreamRequest) {
	// Each sweep cell binary-searches admission on a private cluster; fan
	// the grid across the worker pool and print rows in grid order.
	type cell struct {
		periodMs int
		frame    int64
	}
	var cells []cell
	for _, periodMs := range []int{40, 80, 160, 320} {
		for _, frame := range []int64{1500, 5000, 15000} {
			cells = append(cells, cell{periodMs, frame})
		}
	}
	jobs := make([]func() int, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() int {
			r := req
			r.Period = sim.Time(c.periodMs) * sim.Millisecond
			r.FrameBytes = c.frame
			return cluster.Capacity(cfgs, r)
		}
	}
	caps := experiments.Collect(jobs)
	fmt.Println("period_ms  frame_B  capacity(streams)  committed_bw_kbps")
	for i, c := range cells {
		n := caps[i]
		bw := float64(n) * float64(c.frame*8) / (float64(c.periodMs) / 1000) / 1000
		fmt.Printf("%9d  %7d  %17d  %17.0f\n", c.periodMs, c.frame, n, bw)
	}
}
