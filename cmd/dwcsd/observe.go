// Observability bundle for the real daemon: the same registry + span log +
// flight recorder + SLO monitor the simulated NI carries, driven off the
// wall clock instead of the deterministic engine. The simulator mutates all
// of these from a single engine goroutine; the daemon has concurrent actors
// (the pacing loop, the reassembly path, Prometheus scrapes, the signal
// handler), so every touch goes through one mutex. The pieces themselves
// are unchanged — that is the point: a real run writes the exact artifact
// directory format sim runs produce, and internal/rundiff consumes it
// unmodified.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// snapEvery is the wall-clock cadence of registry snapshots; each snapshot
// is one row per series in metrics.csv.
const snapEvery = 500 * time.Millisecond

// obs is the daemon's observability bundle. Zero value is not usable;
// construct with newObs. A nil *obs is valid and inert, so the sender and
// receiver wire it unconditionally.
type obs struct {
	mu  sync.Mutex
	reg *telemetry.Registry
	mon *slo.Monitor
	rec *blackbox.Recorder

	start    time.Time
	where    string
	dir      string // artifact directory; "" disables writing
	lastSnap sim.Time
	lastEval sim.Time
}

// newObs builds the bundle. name labels the card-equivalent (the process
// role: "dwcsd" sender, "dwcsd-recv", "dwcsd-soak"); artifactsDir enables
// the -artifacts mode when non-empty.
func newObs(name, artifactsDir string) *obs {
	o := &obs{
		reg:   telemetry.New(),
		mon:   slo.NewMonitor(name, slo.Config{}),
		start: time.Now(),
		where: name,
		dir:   artifactsDir,
	}
	// Config zero values select the defaults, which always hold ≥1 event,
	// so the error path is unreachable here.
	o.rec, _ = blackbox.New(blackbox.Config{Name: name})
	// Every recorded span feeds the SLO monitor's latency objective, same
	// fan-out the simulated card uses.
	o.reg.Spans.Observer = o.mon.ObserveSegment
	// Incidents embed the registry values at the moment of the trigger.
	o.rec.StateFn = o.reg.ValuesText
	o.rec.Instrument(o.reg)
	o.mon.Instrument(o.reg)
	// OnChange fires inside mon.Eval, which tick() calls with o.mu held —
	// so this hook must not re-lock.
	o.mon.OnChange = func(stream int, from, to slo.State) {
		at := o.now()
		o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindSLO,
			Stream: stream, A: int64(from), B: int64(to),
			Note: from.String() + "->" + to.String()})
		if to == slo.StateViolated {
			o.rec.Trigger(at, fmt.Sprintf("slo violated: stream %d", stream))
		}
	}
	return o
}

// now maps the wall clock onto sim.Time: nanoseconds since the bundle was
// built, the same epoch the pacing loop uses.
func (o *obs) now() sim.Time {
	if o == nil {
		return 0
	}
	return sim.Time(time.Since(o.start))
}

// span records one causal stage segment in the sim vocabulary.
func (o *obs) span(stream int, seq int64, stage telemetry.Stage, start, end sim.Time) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.reg.Span(stream, seq, stage, o.where, start, end)
	o.mu.Unlock()
}

// event appends one flight-recorder ring event.
func (o *obs) event(e blackbox.Event) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.Record(e)
	o.mu.Unlock()
}

// trigger captures an incident (ring contents + registry state).
func (o *obs) trigger(reason string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.rec.Trigger(o.now(), reason)
	o.mu.Unlock()
}

// track registers a stream's SLO objective derived from its DWCS (x,y)
// window. The stats closure caches the last reading so the objective keeps
// its final numbers after the stream is torn down (soak churn removes
// streams; the monitor's counters must stay monotone).
func (o *obs) track(spec dwcs.StreamSpec, sched *dwcs.Scheduler, latencyBound sim.Time) {
	if o == nil {
		return
	}
	id := spec.ID
	var lastA, lastL int64
	o.mu.Lock()
	o.mon.Track(slo.FromSpec(spec, latencyBound), func() (int64, int64) {
		if st, err := sched.Stats(id); err == nil {
			lastA, lastL = st.Attempts(), st.Losses()
		}
		return lastA, lastL
	})
	o.mu.Unlock()
}

// tick advances the periodic machinery: registry snapshots (metrics.csv
// rows) and SLO evaluations. Call it from the main loop; cheap when nothing
// is due.
func (o *obs) tick() {
	if o == nil {
		return
	}
	at := o.now()
	o.mu.Lock()
	if at-o.lastSnap >= sim.Time(snapEvery) {
		o.reg.Snapshot(at)
		o.lastSnap = at
	}
	if at-o.lastEval >= o.mon.Cfg.EvalEvery {
		o.mon.Eval()
		o.lastEval = at
	}
	o.mu.Unlock()
}

// render returns the Prometheus exposition under the lock — the -metrics
// endpoint's scrape path.
func (o *obs) render() string {
	if o == nil {
		return ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reg.PrometheusText()
}

// locked runs fn under the bundle's lock — for call sites that batch
// several registry touches (per-frame counter + histogram updates).
func (o *obs) locked(fn func()) {
	if o == nil {
		return
	}
	o.mu.Lock()
	fn()
	o.mu.Unlock()
}

// writeArtifacts renders the run into the same artifact directory format
// reprogen's sim runs write — stages.txt, metrics.csv, slo.txt,
// incidents.txt, metrics.prom — so `tracetool -diff simdir realdir` works
// unchanged. A final snapshot and eval run first so short runs still
// produce at least one metrics row and one SLO sample.
func (o *obs) writeArtifacts() error {
	if o == nil || o.dir == "" {
		return nil
	}
	o.mu.Lock()
	at := o.now()
	o.mon.Eval()
	o.reg.Snapshot(at)
	files := []struct{ name, body string }{
		{"stages.txt", o.reg.Spans.StageTable()},
		{"metrics.csv", o.reg.SnapshotsCSV()},
		{"slo.txt", o.mon.Table()},
		{"incidents.txt", o.rec.DumpAll()},
		{"metrics.prom", o.reg.PrometheusText()},
	}
	o.mu.Unlock()
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(o.dir, f.name), []byte(f.body), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dwcsd: artifacts written to %s\n", o.dir)
	return nil
}

// streamComponent names the per-stream metric component: series land as
// repro_dwcsd_s<id>_*{component="dwcsd_s<id>"} so one scrape config covers
// any stream count without label cardinality surprises in the registry.
func streamComponent(id int) string { return fmt.Sprintf("dwcsd_s%d", id) }
