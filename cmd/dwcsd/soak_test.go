package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/rundiff"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestSoakPlanIsDeterministic pins the fixed-seed plan: same shape in, same
// arrivals and churn out — the property that makes two soak runs comparable.
func TestSoakPlanIsDeterministic(t *testing.T) {
	cfg := soakConfig{Sessions: 100, Period: 20 * time.Millisecond,
		Dur: 2 * time.Second, Churn: 0.3}
	sa, ea := soakPlan(cfg)
	sb, eb := soakPlan(cfg)
	if len(sa) != len(sb) || len(ea) != len(eb) {
		t.Fatalf("plan sizes differ: %d/%d vs %d/%d", len(sa), len(ea), len(sb), len(eb))
	}
	for i := range ea {
		if ea[i].at != eb[i].at || ea[i].setup != eb[i].setup || ea[i].sess.id != eb[i].sess.id {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	// Churn adds replacements beyond the target, and every teardown pairs
	// with a same-time replacement setup.
	if len(sa) <= cfg.Sessions {
		t.Fatalf("churn produced no replacement sessions: %d", len(sa))
	}
	tears := 0
	for _, e := range ea {
		if !e.setup {
			tears++
		}
	}
	if len(sa) != cfg.Sessions+tears {
		t.Fatalf("%d sessions for %d target + %d teardowns", len(sa), cfg.Sessions, tears)
	}
}

// TestSoakPlanFlashCrowd pins the flash-arrival property: every initial
// session sets up inside the first 100ms of the run.
func TestSoakPlanFlashCrowd(t *testing.T) {
	sessions, _ := soakPlan(soakConfig{Sessions: 500, Period: 20 * time.Millisecond,
		Dur: 5 * time.Second, Flash: true})
	for _, s := range sessions[:500] {
		if s.setupAt > 100*sim.Millisecond {
			t.Fatalf("session %d arrives at %v under -flash", s.id, s.setupAt)
		}
	}
}

// TestSoakArtifactsAcceptedByRundiff is the acceptance criterion: a soak
// run's artifact directory is consumed by internal/rundiff unchanged — the
// same engine that diffs sim runs — and a self-diff is clean.
func TestSoakArtifactsAcceptedByRundiff(t *testing.T) {
	dir := t.TempDir()
	cfg := soakConfig{
		Sessions: 40,
		Period:   20 * time.Millisecond,
		Dur:      700 * time.Millisecond,
		Churn:    0.25,
		Flash:    true,
		Dir:      dir,
		Drain:    time.Second,
	}
	var out strings.Builder
	if err := soakRun(cfg, newLifecycle(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "soak summary: target=40") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
	for _, f := range []string{"stages.txt", "metrics.csv", "slo.txt", "incidents.txt", "metrics.prom"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("artifact %s missing: %v", f, err)
		}
	}
	rep, err := rundiff.DiffDirs(dir, dir, rundiff.Options{})
	if err != nil {
		t.Fatalf("rundiff rejected the soak artifact dir: %v", err)
	}
	if rep.Regression() {
		t.Fatalf("self-diff regressed:\n%s", rep.Table())
	}
	for _, want := range []string{"stages.txt", "metrics.csv", "slo.txt"} {
		found := false
		for _, c := range rep.Compared {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not compared (compared: %v)", want, rep.Compared)
		}
	}
	// The exposition snapshot must round-trip the same checker scrapes use.
	prom, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := telemetry.CheckPrometheus(string(prom)); err != nil {
		t.Fatalf("invalid exposition artifact: %v", err)
	}
}

// TestSoakGracefulShutdown interrupts a long soak mid-run: sessions drain
// inside the -drain bound instead of running out the full duration, the
// flight recorder dumps an "interrupted" incident into the artifact dir,
// and the summary still reports the partial run. (Clean closure of the
// -metrics listener is pinned separately by TestServeMetricsStopClosesListener;
// soakRun shuts it down through the same stop func.)
func TestSoakGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := soakConfig{
		Sessions: 60,
		Period:   20 * time.Millisecond,
		Dur:      30 * time.Second,
		Churn:    0.2,
		Dir:      dir,
		Drain:    time.Second,
		Metrics:  "127.0.0.1:0",
	}
	lc := newLifecycle()
	time.AfterFunc(400*time.Millisecond, lc.trigger)
	var out strings.Builder
	start := time.Now()
	if err := soakRun(cfg, lc, &out); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("soak ignored shutdown; ran %v of a 30s duration", el)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("no interruption report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "soak summary:") {
		t.Fatalf("no summary for the partial run:\n%s", out.String())
	}
	inc, err := os.ReadFile(filepath.Join(dir, "incidents.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(inc), "interrupted") {
		t.Fatalf("incident dump missing the interruption:\n%s", inc)
	}
}
