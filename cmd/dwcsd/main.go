// Command dwcsd streams synthetic MPEG-1 frames over real UDP, paced by the
// same DWCS scheduler core the simulated NI runs — a genuine end-to-end
// demonstration of the library outside the simulator.
//
// Serve (sender) and recv (receiver) typically run in two terminals:
//
//	dwcsd -recv 127.0.0.1:9961 -dur 5s
//	dwcsd -dest 127.0.0.1:9961 -streams 2 -period 50ms -dur 5s
//
// Frames are fragmented into MTU-sized datagrams with the internal/proto
// media framing and reassembled at the receiver, which reports per-stream
// goodput and inter-arrival jitter.
//
// Either side also serves a live Prometheus endpoint with -metrics: the
// same registry and text format the simulator's telemetry artifacts use,
// so one scrape config covers both the real daemon and simulated runs.
//
//	dwcsd -dest 127.0.0.1:9961 -metrics 127.0.0.1:9900
//	curl http://127.0.0.1:9900/metrics
//
// SIGINT or SIGTERM shuts either side down gracefully: the sender stops
// injecting new frames and drains what the scheduler already holds (bounded
// by -drain), the receiver reports the partial run, and the metrics listener
// finishes in-flight scrapes before closing. A second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	dest := flag.String("dest", "", "serve mode: destination UDP address")
	recv := flag.String("recv", "", "receive mode: UDP listen address")
	streams := flag.Int("streams", 2, "number of concurrent streams")
	period := flag.Duration("period", 50*time.Millisecond, "per-stream frame period")
	dur := flag.Duration("dur", 5*time.Second, "run duration")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this HTTP address while running")
	drain := flag.Duration("drain", 2*time.Second, "graceful-shutdown deadline for draining queued frames on SIGINT/SIGTERM")
	flag.Parse()

	lc := newLifecycle()
	lc.watch(os.Interrupt, syscall.SIGTERM)

	switch {
	case *recv != "":
		if err := receiver(*recv, *dur, *metricsAddr, lc); err != nil {
			fatal(err)
		}
	case *dest != "":
		if err := sender(*dest, *streams, *period, *dur, *metricsAddr, *drain, lc); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "dwcsd: need -dest (send) or -recv (receive); see -h")
		os.Exit(2)
	}
}

// lifecycle coordinates signal-driven graceful shutdown: the send/receive
// loops poll stopped() once per iteration and wind down early when a watched
// signal (or a test) triggers it.
type lifecycle struct {
	stop chan struct{}
	once sync.Once
}

func newLifecycle() *lifecycle { return &lifecycle{stop: make(chan struct{})} }

// watch triggers shutdown on the first of the given signals, then
// unregisters the handler — so a second signal falls back to the default
// disposition and kills a wedged drain.
func (l *lifecycle) watch(sigs ...os.Signal) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		s := <-ch
		signal.Stop(ch)
		fmt.Fprintf(os.Stderr, "dwcsd: %v: draining and shutting down (signal again to abort)\n", s)
		l.trigger()
	}()
}

func (l *lifecycle) trigger() { l.once.Do(func() { close(l.stop) }) }

func (l *lifecycle) stopped() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// metricsHandler serves the registry's Prometheus text dump under /metrics.
// The registered closures only read atomics, so a scrape arriving while the
// send/receive loop runs is race-free.
func metricsHandler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, reg.PrometheusText())
	})
	return mux
}

// serveMetrics starts the metrics endpoint on addr and returns the bound
// address (addr may end in :0) and a stopper. The stopper closes the
// listener gracefully: an in-flight scrape gets a second to finish before
// the connection is torn down.
func serveMetrics(addr string, reg *telemetry.Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: metricsHandler(reg)}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwcsd:", err)
	os.Exit(1)
}

// sender paces clip frames to dest with DWCS over the wall clock. On
// shutdown it stops injecting and drains the frames the scheduler already
// holds, bounded by drainFor.
func sender(dest string, nStreams int, period, dur time.Duration, metricsAddr string, drainFor time.Duration, lc *lifecycle) error {
	conn, err := net.Dial("udp", dest)
	if err != nil {
		return err
	}
	defer conn.Close()

	var sentN, droppedN atomic.Int64
	if metricsAddr != "" {
		reg := telemetry.New()
		reg.CounterFunc("dwcsd", "frames_sent_total",
			"frames paced onto the wire by DWCS", sentN.Load)
		reg.CounterFunc("dwcsd", "frames_dropped_total",
			"frames dropped by the scheduler (deadline passed)", droppedN.Load)
		reg.GaugeFunc("dwcsd", "streams",
			"concurrent streams being paced", func() float64 { return float64(nStreams) })
		bound, stop, err := serveMetrics(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "dwcsd: metrics on http://%s/metrics\n", bound)
	}

	clip := mpeg.GenerateDefault()
	payload := mpeg.Encode(clip, 1960)

	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start)) }
	sched := dwcs.New(dwcs.Config{
		Now:           now,
		EligibleEarly: sim.Time(period) / 4,
	})
	type cursor struct {
		next   int
		inject sim.Time
	}
	cursors := make([]cursor, nStreams)
	for i := 0; i < nStreams; i++ {
		if err := sched.AddStream(dwcs.StreamSpec{
			ID:     i,
			Name:   fmt.Sprintf("s%d", i),
			Period: sim.Time(period),
			Loss:   fixed.New(1, 2),
			Lossy:  true,
			BufCap: 16,
		}); err != nil {
			return err
		}
	}

	emit := func(p *dwcs.Packet) error {
		frame := payload[p.Offset : p.Offset+p.Bytes]
		for _, frag := range proto.FragmentFrame(uint32(p.StreamID), uint32(p.Seq), frame) {
			if _, err := conn.Write(frag); err != nil {
				return err
			}
		}
		sentN.Add(1)
		return nil
	}

	for now() < sim.Time(dur) && !lc.stopped() {
		// Inject due frames (producer side), half a period ahead.
		for i := range cursors {
			c := &cursors[i]
			for c.inject <= now()+sim.Time(period) {
				f := clip.Frames[c.next%len(clip.Frames)]
				if sched.Enqueue(i, dwcs.Packet{Bytes: f.Size, Offset: f.Offset}) != nil {
					break // ring full; retry next round
				}
				c.next++
				c.inject += sim.Time(period)
			}
		}
		d := sched.Schedule()
		switch {
		case d.Packet != nil:
			if err := emit(d.Packet); err != nil {
				return err
			}
		case d.WaitUntil > 0:
			sleep := time.Duration(d.WaitUntil - now())
			if sleep > time.Millisecond {
				sleep = time.Millisecond // re-check injections periodically
			}
			if sleep > 0 {
				time.Sleep(sleep)
			}
		default:
			if len(d.Dropped) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		droppedN.Add(int64(len(d.Dropped)))
	}

	// Interrupted: no new injections, but frames already accepted by the
	// scheduler still go out on their DWCS pacing — bounded by the drain
	// deadline, after which whatever remains is abandoned.
	if lc.stopped() {
		drained := 0
		deadline := time.Now().Add(drainFor)
		for time.Now().Before(deadline) {
			d := sched.Schedule()
			droppedN.Add(int64(len(d.Dropped)))
			switch {
			case d.Packet != nil:
				if err := emit(d.Packet); err != nil {
					return err
				}
				drained++
			case d.WaitUntil > 0:
				time.Sleep(time.Millisecond)
			default:
				if len(d.Dropped) == 0 {
					deadline = time.Time{} // scheduler empty; drain complete
				}
			}
		}
		fmt.Printf("dwcsd: interrupted; drained %d queued frame(s)\n", drained)
	}
	fmt.Printf("dwcsd: sent %d frames (%d dropped) on %d streams over %v\n",
		sentN.Load(), droppedN.Load(), nStreams, dur)
	return nil
}

type streamReport struct {
	frames  int
	bytes   int64
	last    time.Time
	gapsSum time.Duration
	gapsN   int
}

// receiver reassembles frames until dur elapses (or shutdown triggers) and
// prints a per-stream report. Large frames arrive as several datagrams;
// proto.Reassembler rebuilds them exactly as a player-side segmenter would.
func receiver(listen string, dur time.Duration, metricsAddr string, lc *lifecycle) error {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	var framesN, bytesN, discardedN, datagramsN atomic.Int64
	if metricsAddr != "" {
		reg := telemetry.New()
		reg.CounterFunc("dwcsd", "frames_reassembled_total",
			"complete frames delivered by the reassembler", framesN.Load)
		reg.CounterFunc("dwcsd", "bytes_received_total",
			"reassembled frame bytes", bytesN.Load)
		reg.CounterFunc("dwcsd", "frames_discarded_total",
			"incomplete frames abandoned by the reassembler", discardedN.Load)
		reg.CounterFunc("dwcsd", "datagrams_total",
			"UDP datagrams ingested", datagramsN.Load)
		bound, stop, err := serveMetrics(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "dwcsd: metrics on http://%s/metrics\n", bound)
	}

	reports := make(map[uint32]*streamReport)
	reasm := proto.NewReassembler(func(streamID, seq uint32, frame []byte) {
		r := reports[streamID]
		if r == nil {
			r = &streamReport{}
			reports[streamID] = r
		}
		nowT := time.Now()
		if !r.last.IsZero() {
			r.gapsSum += nowT.Sub(r.last)
			r.gapsN++
		}
		r.last = nowT
		r.frames++
		r.bytes += int64(len(frame))
		framesN.Add(1)
		bytesN.Add(int64(len(frame)))
	})

	buf := make([]byte, 64<<10)
	deadline := time.Now().Add(dur)
	// The short read deadline bounds shutdown latency: a stop is noticed
	// within one poll even when the wire has gone quiet.
	for time.Now().Before(deadline) && !lc.stopped() {
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		_ = reasm.Ingest(buf[:n]) // malformed datagrams are skipped
		datagramsN.Add(1)
		// Mirror the reassembler's plain counter so a concurrent scrape
		// never races the ingest loop.
		discardedN.Store(int64(reasm.Discarded))
	}
	if lc.stopped() {
		fmt.Println("dwcsd: interrupted; reporting partial run")
	}
	if len(reports) == 0 {
		fmt.Println("dwcsd: no frames received")
		return nil
	}
	for id, r := range reports {
		meanGap := time.Duration(0)
		if r.gapsN > 0 {
			meanGap = r.gapsSum / time.Duration(r.gapsN)
		}
		fmt.Printf("stream %d: %d frames, %d bytes, %.1f kbps, mean inter-arrival %v\n",
			id, r.frames, r.bytes, float64(r.bytes*8)/dur.Seconds()/1000, meanGap.Round(time.Millisecond))
	}
	fmt.Printf("total reassembled frames: %d (discarded %d)\n", reasm.Completed, reasm.Discarded)
	return nil
}
