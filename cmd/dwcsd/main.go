// Command dwcsd streams synthetic MPEG-1 frames over real UDP, paced by the
// same DWCS scheduler core the simulated NI runs — a genuine end-to-end
// demonstration of the library outside the simulator.
//
// Serve (sender) and recv (receiver) typically run in two terminals:
//
//	dwcsd -recv 127.0.0.1:9961 -dur 5s
//	dwcsd -dest 127.0.0.1:9961 -streams 2 -period 50ms -dur 5s
//
// Frames are fragmented into MTU-sized datagrams with the internal/proto
// media framing and reassembled at the receiver, which reports per-stream
// goodput and inter-arrival jitter.
//
// Both sides carry the full observability stack the simulated NI carries:
// per-frame causal spans in the sim stage vocabulary (queue/tx on the
// sender, wire/playout on the receiver), a flight recorder whose incidents
// dump on SLO violation or abnormal exit, and an SLO burn-rate monitor
// derived from each stream's DWCS (x,y) loss window. With -artifacts DIR
// the run writes the same artifact directory format sim runs produce
// (stages.txt, metrics.csv, slo.txt, incidents.txt), so
// `tracetool -diff -conformance <sim artifacts> <real artifacts>` closes
// the sim-vs-real loop with no conversion step.
//
// Soak mode exercises the daemon at session scale in one process:
//
//	dwcsd -soak 2000 -dur 5s -flash -artifacts /tmp/soak
//
// spawns 2000 in-process UDP client sessions with setup/teardown churn
// (and optionally flash-crowd arrivals), reporting per-session goodput and
// jitter distributions.
//
// Either side also serves a live Prometheus endpoint with -metrics: the
// same registry and text format the simulator's telemetry artifacts use,
// including per-stream series (component "dwcsd_s<id>"), so one scrape
// config covers both the real daemon and simulated runs.
//
//	dwcsd -dest 127.0.0.1:9961 -metrics 127.0.0.1:9900
//	curl http://127.0.0.1:9900/metrics
//
// SIGINT or SIGTERM shuts any mode down gracefully: the sender stops
// injecting new frames and drains what the scheduler already holds (bounded
// by -drain), the receiver reports the partial run, soak sessions wind down
// with an "interrupted" incident in the flight recorder, and the metrics
// listener finishes in-flight scrapes before closing. A second signal
// aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	dest := flag.String("dest", "", "serve mode: destination UDP address")
	recv := flag.String("recv", "", "receive mode: UDP listen address")
	soak := flag.Int("soak", 0, "soak mode: spawn N in-process UDP client sessions against a loopback receiver")
	streams := flag.Int("streams", 2, "number of concurrent streams")
	period := flag.Duration("period", 50*time.Millisecond, "per-stream frame period")
	dur := flag.Duration("dur", 5*time.Second, "run duration")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this HTTP address while running")
	artifacts := flag.String("artifacts", "", "write the sim-format artifact directory (stages.txt, metrics.csv, slo.txt, incidents.txt) here on exit")
	drain := flag.Duration("drain", 2*time.Second, "graceful-shutdown deadline for draining queued frames on SIGINT/SIGTERM")
	flash := flag.Bool("flash", false, "soak mode: flash-crowd arrivals (every session sets up inside the first 100ms)")
	churn := flag.Float64("churn", 0.25, "soak mode: fraction of sessions torn down and replaced mid-run")
	throttle := flag.Duration("throttle", 0, "soak mode: stall injected before every dispatch (validates the regression gate)")
	flag.Parse()

	lc := newLifecycle()
	lc.watch(os.Interrupt, syscall.SIGTERM)

	switch {
	case *soak > 0:
		cfg := soakConfig{
			Sessions: *soak,
			Period:   *period,
			Dur:      *dur,
			Flash:    *flash,
			Churn:    *churn,
			Throttle: *throttle,
			Metrics:  *metricsAddr,
			Dir:      *artifacts,
			Drain:    *drain,
		}
		if err := soakRun(cfg, lc, os.Stdout); err != nil {
			fatal(err)
		}
	case *recv != "":
		if err := receiver(*recv, *dur, *metricsAddr, *artifacts, lc); err != nil {
			fatal(err)
		}
	case *dest != "":
		if err := sender(*dest, *streams, *period, *dur, *metricsAddr, *artifacts, *drain, lc); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "dwcsd: need -dest (send), -recv (receive), or -soak N; see -h")
		os.Exit(2)
	}
}

// lifecycle coordinates signal-driven graceful shutdown: the send/receive
// loops poll stopped() once per iteration and wind down early when a watched
// signal (or a test) triggers it.
type lifecycle struct {
	stop chan struct{}
	once sync.Once
}

func newLifecycle() *lifecycle { return &lifecycle{stop: make(chan struct{})} }

// watch triggers shutdown on the first of the given signals, then
// unregisters the handler — so a second signal falls back to the default
// disposition and kills a wedged drain.
func (l *lifecycle) watch(sigs ...os.Signal) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		s := <-ch
		signal.Stop(ch)
		fmt.Fprintf(os.Stderr, "dwcsd: %v: draining and shutting down (signal again to abort)\n", s)
		l.trigger()
	}()
}

func (l *lifecycle) trigger() { l.once.Do(func() { close(l.stop) }) }

func (l *lifecycle) stopped() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// metricsHandler serves a Prometheus text dump under /metrics. render is
// called per scrape; the obs bundle's render locks against the send/receive
// loop, so a scrape arriving mid-frame is race-free.
func metricsHandler(render func() string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, render())
	})
	return mux
}

// serveMetrics starts the metrics endpoint on addr and returns the bound
// address (addr may end in :0) and a stopper. The stopper closes the
// listener gracefully: an in-flight scrape gets a second to finish before
// the connection is torn down.
func serveMetrics(addr string, render func() string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: metricsHandler(render)}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwcsd:", err)
	os.Exit(1)
}

// senderStream is the per-stream export surface of the pacing side.
type senderStream struct {
	sent  *telemetry.Counter
	bytes *telemetry.Counter
	drops *telemetry.Counter
}

func newSenderStream(o *obs, id int) senderStream {
	c := streamComponent(id)
	return senderStream{
		sent:  o.reg.Counter(c, "frames_sent_total", "frames paced onto the wire by DWCS"),
		bytes: o.reg.Counter(c, "bytes_sent_total", "media bytes paced onto the wire"),
		drops: o.reg.Counter(c, "drops_total", "frames dropped by the scheduler (deadline passed)"),
	}
}

// sender paces clip frames to dest with DWCS over the wall clock. On
// shutdown it stops injecting and drains the frames the scheduler already
// holds, bounded by drainFor.
func sender(dest string, nStreams int, period, dur time.Duration, metricsAddr, artifactsDir string, drainFor time.Duration, lc *lifecycle) (err error) {
	conn, err := net.Dial("udp", dest)
	if err != nil {
		return err
	}
	defer conn.Close()

	o := newObs("dwcsd", artifactsDir)
	defer func() {
		if err != nil {
			o.trigger("abnormal exit: " + err.Error())
		}
		if werr := o.writeArtifacts(); werr != nil && err == nil {
			err = werr
		}
	}()
	sentN := o.reg.Counter("dwcsd", "frames_sent_total", "frames paced onto the wire by DWCS")
	droppedN := o.reg.Counter("dwcsd", "frames_dropped_total", "frames dropped by the scheduler (deadline passed)")
	o.reg.GaugeFunc("dwcsd", "streams",
		"concurrent streams being paced", func() float64 { return float64(nStreams) })
	perStream := make([]senderStream, nStreams)
	for i := range perStream {
		perStream[i] = newSenderStream(o, i)
	}
	if metricsAddr != "" {
		bound, stop, err := serveMetrics(metricsAddr, o.render)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "dwcsd: metrics on http://%s/metrics\n", bound)
	}

	clip := mpeg.GenerateDefault()
	payload := mpeg.Encode(clip, 1960)

	now := o.now
	sched := dwcs.New(dwcs.Config{
		Now:           now,
		EligibleEarly: sim.Time(period) / 4,
	})
	type cursor struct {
		next   int
		inject sim.Time
	}
	cursors := make([]cursor, nStreams)
	for i := 0; i < nStreams; i++ {
		spec := dwcs.StreamSpec{
			ID:     i,
			Name:   fmt.Sprintf("s%d", i),
			Period: sim.Time(period),
			Loss:   fixed.New(1, 2),
			Lossy:  true,
			BufCap: 16,
		}
		if err := sched.AddStream(spec); err != nil {
			return err
		}
		// The SLO's latency objective bounds queue wait at a small multiple
		// of the frame period — the same derivation sim cards use.
		o.track(spec, sched, 4*sim.Time(period))
	}

	emit := func(p *dwcs.Packet) error {
		txStart := now()
		frame := payload[p.Offset : p.Offset+p.Bytes]
		for _, frag := range proto.FragmentFrame(uint32(p.StreamID), uint32(p.Seq), frame) {
			if _, err := conn.Write(frag); err != nil {
				return err
			}
		}
		txEnd := now()
		o.locked(func() {
			o.reg.Span(p.StreamID, p.Seq, telemetry.StageQueue, o.where, p.Enqueued, txStart)
			o.reg.Span(p.StreamID, p.Seq, telemetry.StageTx, o.where, txStart, txEnd)
			o.rec.Record(blackbox.Event{At: txEnd, Kind: blackbox.KindDecision,
				Stream: p.StreamID, Seq: p.Seq, A: p.Bytes})
			sentN.Inc()
			if p.StreamID < len(perStream) {
				perStream[p.StreamID].sent.Inc()
				perStream[p.StreamID].bytes.Add(p.Bytes)
			}
		})
		return nil
	}
	drop := func(ps []*dwcs.Packet) {
		if len(ps) == 0 {
			return
		}
		o.locked(func() {
			at := o.now()
			for _, p := range ps {
				o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindDrop,
					Stream: p.StreamID, Seq: p.Seq, A: p.Bytes, Note: "deadline"})
				droppedN.Inc()
				if p.StreamID < len(perStream) {
					perStream[p.StreamID].drops.Inc()
				}
			}
		})
	}

	for now() < sim.Time(dur) && !lc.stopped() {
		// Inject due frames (producer side), half a period ahead.
		for i := range cursors {
			c := &cursors[i]
			for c.inject <= now()+sim.Time(period) {
				f := clip.Frames[c.next%len(clip.Frames)]
				if sched.Enqueue(i, dwcs.Packet{Bytes: f.Size, Offset: f.Offset}) != nil {
					// Ring full; note the refusal and retry next round.
					o.event(blackbox.Event{At: o.now(), Kind: blackbox.KindRefusal,
						Stream: i, A: f.Size, Note: "ring full"})
					break
				}
				c.next++
				c.inject += sim.Time(period)
			}
		}
		d := sched.Schedule()
		switch {
		case d.Packet != nil:
			if err := emit(d.Packet); err != nil {
				return err
			}
		case d.WaitUntil > 0:
			sleep := time.Duration(d.WaitUntil - now())
			if sleep > time.Millisecond {
				sleep = time.Millisecond // re-check injections periodically
			}
			if sleep > 0 {
				time.Sleep(sleep)
			}
		default:
			if len(d.Dropped) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		drop(d.Dropped)
		o.tick()
	}

	// Interrupted: no new injections, but frames already accepted by the
	// scheduler still go out on their DWCS pacing — bounded by the drain
	// deadline, after which whatever remains is abandoned.
	if lc.stopped() {
		o.trigger("interrupted")
		drained := 0
		deadline := time.Now().Add(drainFor)
		for time.Now().Before(deadline) {
			d := sched.Schedule()
			drop(d.Dropped)
			switch {
			case d.Packet != nil:
				if err := emit(d.Packet); err != nil {
					return err
				}
				drained++
			case d.WaitUntil > 0:
				time.Sleep(time.Millisecond)
			default:
				if len(d.Dropped) == 0 {
					deadline = time.Time{} // scheduler empty; drain complete
				}
			}
			o.tick()
		}
		fmt.Printf("dwcsd: interrupted; drained %d queued frame(s)\n", drained)
	}
	fmt.Printf("dwcsd: sent %d frames (%d dropped) on %d streams over %v\n",
		sentN.Value(), droppedN.Value(), nStreams, dur)
	return nil
}

// recvStream is the per-stream export surface of the receive side: counters
// plus the fixed-bucket inter-arrival jitter histogram that replaces the
// old ad-hoc running mean.
type recvStream struct {
	frames *telemetry.Counter
	bytes  *telemetry.Counter
	jitter *telemetry.Histogram
	last   sim.Time
	seen   bool
}

func newRecvStream(o *obs, id uint32) *recvStream {
	c := streamComponent(int(id))
	return &recvStream{
		frames: o.reg.Counter(c, "frames_received_total", "complete frames delivered by the reassembler"),
		bytes:  o.reg.Counter(c, "bytes_received_total", "reassembled frame bytes"),
		jitter: o.reg.HistogramMetric(c, "interarrival_ms", "frame inter-arrival gap", telemetry.JitterBucketsMs),
	}
}

// observeArrival records one completed frame: inter-arrival jitter into the
// fixed-bucket histogram, counters forward. Caller holds the obs lock.
func (r *recvStream) observeArrival(at sim.Time, frameBytes int) {
	if r.seen {
		r.jitter.Observe(sim.Time(at - r.last).Milliseconds())
	}
	r.last, r.seen = at, true
	r.frames.Inc()
	r.bytes.Add(int64(frameBytes))
}

// meanGapMs returns the histogram-derived mean inter-arrival gap.
func (r *recvStream) meanGapMs() float64 {
	if r.jitter.Count() == 0 {
		return 0
	}
	return r.jitter.Sum() / float64(r.jitter.Count())
}

// receiver reassembles frames until dur elapses (or shutdown triggers) and
// prints a per-stream report. Large frames arrive as several datagrams;
// proto.Reassembler rebuilds them exactly as a player-side segmenter would.
// The playout span of each multi-fragment frame — first fragment arrival to
// reassembly completion — lands in the span log, so a receiver-side
// artifact dir carries real client-path stage latencies.
func receiver(listen string, dur time.Duration, metricsAddr, artifactsDir string, lc *lifecycle) (err error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	o := newObs("dwcsd-recv", artifactsDir)
	defer func() {
		if err != nil {
			o.trigger("abnormal exit: " + err.Error())
		}
		if werr := o.writeArtifacts(); werr != nil && err == nil {
			err = werr
		}
	}()
	framesN := o.reg.Counter("dwcsd", "frames_reassembled_total", "complete frames delivered by the reassembler")
	bytesN := o.reg.Counter("dwcsd", "bytes_received_total", "reassembled frame bytes")
	discardedN := o.reg.Counter("dwcsd", "frames_discarded_total", "incomplete frames abandoned by the reassembler")
	datagramsN := o.reg.Counter("dwcsd", "datagrams_total", "UDP datagrams ingested")
	if metricsAddr != "" {
		bound, stop, err := serveMetrics(metricsAddr, o.render)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "dwcsd: metrics on http://%s/metrics\n", bound)
	}

	streams := make(map[uint32]*recvStream)
	// firstFrag tracks when each in-flight frame's first fragment landed —
	// the start of its playout span.
	firstFrag := make(map[uint64]sim.Time)
	frameKey := func(stream, seq uint32) uint64 { return uint64(stream)<<32 | uint64(seq) }
	var lastDiscarded int64
	reasm := proto.NewReassembler(func(streamID, seq uint32, frame []byte) {
		// Runs inside Ingest below, which the loop calls under o.locked.
		at := o.now()
		r := streams[streamID]
		if r == nil {
			r = newRecvStream(o, streamID)
			streams[streamID] = r
		}
		r.observeArrival(at, len(frame))
		framesN.Inc()
		bytesN.Add(int64(len(frame)))
		if t0, ok := firstFrag[frameKey(streamID, seq)]; ok {
			delete(firstFrag, frameKey(streamID, seq))
			o.reg.Span(int(streamID), int64(seq), telemetry.StagePlayout, o.where, t0, at)
		}
	})

	buf := make([]byte, 64<<10)
	deadline := time.Now().Add(dur)
	// The short read deadline bounds shutdown latency: a stop is noticed
	// within one poll even when the wire has gone quiet.
	for time.Now().Before(deadline) && !lc.stopped() {
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				o.tick()
				continue
			}
			return err
		}
		o.locked(func() {
			if h, _, err := proto.UnmarshalMedia(buf[:n]); err == nil && h.FragOff == 0 {
				firstFrag[frameKey(h.StreamID, h.Seq)] = o.now()
			}
			_ = reasm.Ingest(buf[:n]) // malformed datagrams are skipped
			datagramsN.Inc()
			if d := int64(reasm.Discarded); d != lastDiscarded {
				discardedN.Add(d - lastDiscarded)
				lastDiscarded = d
			}
		})
		o.tick()
	}
	if lc.stopped() {
		o.trigger("interrupted")
		fmt.Println("dwcsd: interrupted; reporting partial run")
	}
	if len(streams) == 0 {
		fmt.Println("dwcsd: no frames received")
		return nil
	}
	ids := make([]uint32, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	for i := range ids { // tiny map: selection sort beats pulling in sort for uint32
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		r := streams[id]
		fmt.Printf("stream %d: %d frames, %d bytes, %.1f kbps, mean inter-arrival %.1fms\n",
			id, r.frames.Value(), r.bytes.Value(),
			float64(r.bytes.Value()*8)/dur.Seconds()/1000, r.meanGapMs())
	}
	fmt.Printf("total reassembled frames: %d (discarded %d)\n", reasm.Completed, reasm.Discarded)
	return nil
}
