package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// dwcsdRegistry builds the same registry shape the sender exports.
func dwcsdRegistry(sent, dropped *atomic.Int64) *telemetry.Registry {
	reg := telemetry.New()
	reg.CounterFunc("dwcsd", "frames_sent_total",
		"frames paced onto the wire by DWCS", sent.Load)
	reg.CounterFunc("dwcsd", "frames_dropped_total",
		"frames dropped by the scheduler (deadline passed)", dropped.Load)
	reg.GaugeFunc("dwcsd", "streams",
		"concurrent streams being paced", func() float64 { return 2 })
	return reg
}

func TestMetricsEndpointServesValidPrometheus(t *testing.T) {
	var sent, dropped atomic.Int64
	sent.Store(151)
	dropped.Store(3)
	srv := httptest.NewServer(metricsHandler(dwcsdRegistry(&sent, &dropped)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	// The dump must be a well-formed Prometheus exposition — the same
	// checker the simulator's telemetry artifacts are validated with.
	families, samples, err := telemetry.CheckPrometheus(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if families < 3 || samples < 3 {
		t.Fatalf("families=%d samples=%d, want >= 3 each\n%s", families, samples, body)
	}
	for _, want := range []string{
		`repro_dwcsd_frames_sent_total{component="dwcsd"} 151`,
		`repro_dwcsd_frames_dropped_total{component="dwcsd"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// A later scrape observes counter movement through the atomics.
	sent.Add(9)
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `repro_dwcsd_frames_sent_total{component="dwcsd"} 160`) {
		t.Fatalf("second scrape stale:\n%s", body)
	}

	// Anything but /metrics is a 404, not a panic.
	resp, err = http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/other status %d, want 404", resp.StatusCode)
	}
}

func TestLifecycleTriggerIsIdempotent(t *testing.T) {
	lc := newLifecycle()
	if lc.stopped() {
		t.Fatal("fresh lifecycle already stopped")
	}
	lc.trigger()
	lc.trigger() // a second trigger must not panic on a closed channel
	if !lc.stopped() {
		t.Fatal("triggered lifecycle not stopped")
	}
}

// TestServeMetricsStopClosesListener pins the graceful-shutdown contract of
// the -metrics endpoint: stop() returns promptly and afterwards the listener
// accepts no new connections.
func TestServeMetricsStopClosesListener(t *testing.T) {
	var sent, dropped atomic.Int64
	bound, stop, err := serveMetrics("127.0.0.1:0", dwcsdRegistry(&sent, &dropped))
	if err != nil {
		t.Fatal(err)
	}
	// The endpoint works before the stop.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() wedged past its own drain deadline")
	}
	if resp, err := client.Get("http://" + bound + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting connections after stop()")
	}
}

// TestSenderDrainsOnShutdown interrupts a long sender run and verifies it
// winds down within the drain deadline instead of running out the full -dur.
func TestSenderDrainsOnShutdown(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, _, err := sink.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	lc := newLifecycle()
	time.AfterFunc(150*time.Millisecond, lc.trigger)
	start := time.Now()
	if err := sender(sink.LocalAddr().String(), 2, 20*time.Millisecond,
		30*time.Second, "", time.Second, lc); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("sender ignored shutdown; ran %v of a 30s duration", el)
	}
}

// TestReceiverStopsOnShutdown interrupts a receiver blocked on a quiet wire;
// the 200ms read-deadline poll must notice the stop within one cycle.
func TestReceiverStopsOnShutdown(t *testing.T) {
	lc := newLifecycle()
	time.AfterFunc(100*time.Millisecond, lc.trigger)
	start := time.Now()
	if err := receiver("127.0.0.1:0", 30*time.Second, "", lc); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("receiver ignored shutdown; ran %v of a 30s duration", el)
	}
}

func TestServeMetricsBindsEphemeralPort(t *testing.T) {
	var sent, dropped atomic.Int64
	bound, stop, err := serveMetrics("127.0.0.1:0", dwcsdRegistry(&sent, &dropped))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := telemetry.CheckPrometheus(string(body)); err != nil {
		t.Fatalf("invalid exposition from live server: %v", err)
	}
}
