package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// dwcsdRegistry builds the same registry shape the sender exports.
func dwcsdRegistry(sent, dropped *atomic.Int64) *telemetry.Registry {
	reg := telemetry.New()
	reg.CounterFunc("dwcsd", "frames_sent_total",
		"frames paced onto the wire by DWCS", sent.Load)
	reg.CounterFunc("dwcsd", "frames_dropped_total",
		"frames dropped by the scheduler (deadline passed)", dropped.Load)
	reg.GaugeFunc("dwcsd", "streams",
		"concurrent streams being paced", func() float64 { return 2 })
	return reg
}

func TestMetricsEndpointServesValidPrometheus(t *testing.T) {
	var sent, dropped atomic.Int64
	sent.Store(151)
	dropped.Store(3)
	srv := httptest.NewServer(metricsHandler(dwcsdRegistry(&sent, &dropped).PrometheusText))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	// The dump must be a well-formed Prometheus exposition — the same
	// checker the simulator's telemetry artifacts are validated with.
	families, samples, err := telemetry.CheckPrometheus(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if families < 3 || samples < 3 {
		t.Fatalf("families=%d samples=%d, want >= 3 each\n%s", families, samples, body)
	}
	for _, want := range []string{
		`repro_dwcsd_frames_sent_total{component="dwcsd"} 151`,
		`repro_dwcsd_frames_dropped_total{component="dwcsd"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// A later scrape observes counter movement through the atomics.
	sent.Add(9)
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `repro_dwcsd_frames_sent_total{component="dwcsd"} 160`) {
		t.Fatalf("second scrape stale:\n%s", body)
	}

	// Anything but /metrics is a 404, not a panic.
	resp, err = http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/other status %d, want 404", resp.StatusCode)
	}
}

func TestLifecycleTriggerIsIdempotent(t *testing.T) {
	lc := newLifecycle()
	if lc.stopped() {
		t.Fatal("fresh lifecycle already stopped")
	}
	lc.trigger()
	lc.trigger() // a second trigger must not panic on a closed channel
	if !lc.stopped() {
		t.Fatal("triggered lifecycle not stopped")
	}
}

// TestServeMetricsStopClosesListener pins the graceful-shutdown contract of
// the -metrics endpoint: stop() returns promptly and afterwards the listener
// accepts no new connections.
func TestServeMetricsStopClosesListener(t *testing.T) {
	var sent, dropped atomic.Int64
	bound, stop, err := serveMetrics("127.0.0.1:0", dwcsdRegistry(&sent, &dropped).PrometheusText)
	if err != nil {
		t.Fatal(err)
	}
	// The endpoint works before the stop.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() wedged past its own drain deadline")
	}
	if resp, err := client.Get("http://" + bound + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("listener still accepting connections after stop()")
	}
}

// TestSenderDrainsOnShutdown interrupts a long sender run and verifies it
// winds down within the drain deadline instead of running out the full -dur.
func TestSenderDrainsOnShutdown(t *testing.T) {
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, _, err := sink.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	lc := newLifecycle()
	time.AfterFunc(150*time.Millisecond, lc.trigger)
	start := time.Now()
	if err := sender(sink.LocalAddr().String(), 2, 20*time.Millisecond,
		30*time.Second, "", "", time.Second, lc); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("sender ignored shutdown; ran %v of a 30s duration", el)
	}
}

// TestReceiverStopsOnShutdown interrupts a receiver blocked on a quiet wire;
// the 200ms read-deadline poll must notice the stop within one cycle.
func TestReceiverStopsOnShutdown(t *testing.T) {
	lc := newLifecycle()
	time.AfterFunc(100*time.Millisecond, lc.trigger)
	start := time.Now()
	if err := receiver("127.0.0.1:0", 30*time.Second, "", "", lc); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("receiver ignored shutdown; ran %v of a 30s duration", el)
	}
}

func TestServeMetricsBindsEphemeralPort(t *testing.T) {
	var sent, dropped atomic.Int64
	bound, stop, err := serveMetrics("127.0.0.1:0", dwcsdRegistry(&sent, &dropped).PrometheusText)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := telemetry.CheckPrometheus(string(body)); err != nil {
		t.Fatalf("invalid exposition from live server: %v", err)
	}
}

// TestPerStreamPrometheusRoundTrip is the per-stream-labels satellite: the
// sender and receiver register per-stream series under component
// "dwcsd_s<id>", and the rendered exposition round-trips through the same
// CheckPrometheus validator the simulator's artifacts use.
func TestPerStreamPrometheusRoundTrip(t *testing.T) {
	o := newObs("dwcsd", "")
	s0 := newSenderStream(o, 0)
	s1 := newSenderStream(o, 1)
	s0.sent.Add(10)
	s0.bytes.Add(5000)
	s1.sent.Add(7)
	s1.drops.Add(2)
	r3 := newRecvStream(o, 3)
	r3.observeArrival(10*sim.Millisecond, 900)
	r3.observeArrival(60*sim.Millisecond, 900) // 50ms gap into the histogram

	text := o.render()
	families, samples, err := telemetry.CheckPrometheus(text)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	if families < 6 || samples < 10 {
		t.Fatalf("families=%d samples=%d, want a populated exposition\n%s", families, samples, text)
	}
	for _, want := range []string{
		`repro_dwcsd_s0_frames_sent_total{component="dwcsd_s0"} 10`,
		`repro_dwcsd_s0_bytes_sent_total{component="dwcsd_s0"} 5000`,
		`repro_dwcsd_s1_frames_sent_total{component="dwcsd_s1"} 7`,
		`repro_dwcsd_s1_drops_total{component="dwcsd_s1"} 2`,
		`repro_dwcsd_s3_bytes_received_total{component="dwcsd_s3"} 1800`,
		`repro_dwcsd_s3_interarrival_ms_count{component="dwcsd_s3"} 1`,
		`repro_dwcsd_s3_interarrival_ms_bucket{component="dwcsd_s3",le="50"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if got := r3.meanGapMs(); got != 50 {
		t.Fatalf("histogram-derived mean gap = %v, want 50", got)
	}
}

// TestObsSLOViolationDumpsIncident wires the bundle end-to-end: a stream
// whose stats burn its whole loss budget escalates to violated, which must
// leave a KindSLO trail and a triggered incident holding the registry state.
func TestObsSLOViolationDumpsIncident(t *testing.T) {
	o := newObs("dwcsd", "")
	var losses int64
	o.mu.Lock()
	o.mon.Track(sloObjective(5), func() (int64, int64) {
		losses += 10
		return losses, losses // every attempt lost: maximal burn
	})
	o.mu.Unlock()
	for i := 0; i < 12; i++ {
		o.mu.Lock()
		o.mon.Eval()
		o.mu.Unlock()
	}
	o.mu.Lock()
	dump := o.rec.DumpAll()
	violations := o.mon.Violations
	o.mu.Unlock()
	if violations == 0 {
		t.Fatal("all-loss stream never violated")
	}
	if !strings.Contains(dump, "slo violated: stream 5") {
		t.Fatalf("no violation incident:\n%s", dump)
	}
	if !strings.Contains(dump, "state:") {
		t.Fatalf("incident carries no registry state:\n%s", dump)
	}
}

// sloObjective builds a minimal all-loss-intolerant objective for tests.
func sloObjective(id int) slo.Objective {
	return slo.Objective{Stream: id, Name: "t", LossTarget: 0.01}
}
