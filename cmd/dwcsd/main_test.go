package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// dwcsdRegistry builds the same registry shape the sender exports.
func dwcsdRegistry(sent, dropped *atomic.Int64) *telemetry.Registry {
	reg := telemetry.New()
	reg.CounterFunc("dwcsd", "frames_sent_total",
		"frames paced onto the wire by DWCS", sent.Load)
	reg.CounterFunc("dwcsd", "frames_dropped_total",
		"frames dropped by the scheduler (deadline passed)", dropped.Load)
	reg.GaugeFunc("dwcsd", "streams",
		"concurrent streams being paced", func() float64 { return 2 })
	return reg
}

func TestMetricsEndpointServesValidPrometheus(t *testing.T) {
	var sent, dropped atomic.Int64
	sent.Store(151)
	dropped.Store(3)
	srv := httptest.NewServer(metricsHandler(dwcsdRegistry(&sent, &dropped)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	// The dump must be a well-formed Prometheus exposition — the same
	// checker the simulator's telemetry artifacts are validated with.
	families, samples, err := telemetry.CheckPrometheus(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if families < 3 || samples < 3 {
		t.Fatalf("families=%d samples=%d, want >= 3 each\n%s", families, samples, body)
	}
	for _, want := range []string{
		`repro_dwcsd_frames_sent_total{component="dwcsd"} 151`,
		`repro_dwcsd_frames_dropped_total{component="dwcsd"} 3`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// A later scrape observes counter movement through the atomics.
	sent.Add(9)
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `repro_dwcsd_frames_sent_total{component="dwcsd"} 160`) {
		t.Fatalf("second scrape stale:\n%s", body)
	}

	// Anything but /metrics is a 404, not a panic.
	resp, err = http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/other status %d, want 404", resp.StatusCode)
	}
}

func TestServeMetricsBindsEphemeralPort(t *testing.T) {
	var sent, dropped atomic.Int64
	bound, stop, err := serveMetrics("127.0.0.1:0", dwcsdRegistry(&sent, &dropped))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := telemetry.CheckPrometheus(string(body)); err != nil {
		t.Fatalf("invalid exposition from live server: %v", err)
	}
}
