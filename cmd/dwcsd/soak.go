// Soak mode: many in-process UDP client sessions against one DWCS-paced
// sender, in one process so sender and receiver share a clock — which makes
// the full causal span vocabulary (queue → tx → wire) measurable on real
// sockets, not just in the simulator. Session arrival, churn, and frame
// sizing come from a fixed-seed plan, so two soak runs of the same shape
// are comparable (wall-clock noise aside — that is what tracetool's
// conformance mode tolerates).
package main

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// soakConfig shapes one soak run.
type soakConfig struct {
	Sessions int           // target concurrent sessions
	Period   time.Duration // per-session frame period
	Dur      time.Duration // run duration
	Flash    bool          // flash crowd: all setups inside the first 100ms
	Churn    float64       // fraction of sessions torn down and replaced mid-run
	Throttle time.Duration // injected stall per dispatch (gate validation)
	Metrics  string        // Prometheus listen address, "" disables
	Dir      string        // artifact directory, "" disables
	Drain    time.Duration // graceful-shutdown drain bound
}

// goodputBucketsKbps are the fixed bounds of the per-session goodput
// histogram (kbps at session teardown).
var goodputBucketsKbps = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// soakSession is one client session's ledger. All fields are guarded by the
// obs lock: the pacing loop and the receive goroutine both touch them.
type soakSession struct {
	id      int
	setupAt sim.Time // planned arrival
	tearAt  sim.Time // planned churn teardown; 0 = lives to end of run

	started, ended     bool
	startedAt, endedAt sim.Time
	inject             sim.Time // next frame injection due time

	framesSent, framesRecv, bytesRecv int64
	lastRecv                          sim.Time
	seenRecv                          bool
}

// soakPlanEvent is one arrival or departure in the fixed-seed plan.
type soakPlanEvent struct {
	at    sim.Time
	setup bool
	sess  *soakSession
}

// soakPlan lays out session arrivals and churn from a fixed seed. Arrivals
// land inside the first 100ms under flash (thousands of setups hammering
// AddStream at once) or staggered across the first half of the run
// otherwise; churn victims are torn down mid-run and replaced immediately
// with fresh session IDs, so the target concurrency holds while setup and
// teardown paths stay continuously exercised.
func soakPlan(cfg soakConfig) ([]*soakSession, []soakPlanEvent) {
	rng := rand.New(rand.NewSource(1))
	dur := sim.Time(cfg.Dur)
	arriveWindow := dur / 2
	if cfg.Flash {
		arriveWindow = 100 * sim.Millisecond
		if arriveWindow > dur/4 {
			arriveWindow = dur / 4
		}
	}
	var sessions []*soakSession
	var events []soakPlanEvent
	for i := 0; i < cfg.Sessions; i++ {
		s := &soakSession{id: i, setupAt: sim.Time(rng.Int63n(int64(arriveWindow) + 1))}
		sessions = append(sessions, s)
		events = append(events, soakPlanEvent{at: s.setupAt, setup: true, sess: s})
	}
	churnN := int(cfg.Churn * float64(cfg.Sessions))
	for _, i := range rng.Perm(cfg.Sessions)[:churnN] {
		victim := sessions[i]
		tear := dur/4 + sim.Time(rng.Int63n(int64(dur/2)+1))
		if tear <= victim.setupAt {
			continue // arrived too late to churn meaningfully
		}
		victim.tearAt = tear
		events = append(events, soakPlanEvent{at: tear, setup: false, sess: victim})
		repl := &soakSession{id: len(sessions), setupAt: tear}
		sessions = append(sessions, repl)
		events = append(events, soakPlanEvent{at: tear, setup: true, sess: repl})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	return sessions, events
}

// quantile returns the q-th quantile of xs (sorted in place); 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}

// soakRun drives one soak: a loopback receiver goroutine, a DWCS pacing
// loop over every active session, plan-driven setup/teardown churn, and the
// full observability bundle. The summary line it prints is the contract the
// SOAK_BASELINE.txt gate in bench_compare.sh parses.
func soakRun(cfg soakConfig, lc *lifecycle, out io.Writer) (err error) {
	if cfg.Sessions <= 0 {
		return fmt.Errorf("soak: need at least one session")
	}
	if cfg.Churn < 0 || cfg.Churn > 1 {
		return fmt.Errorf("soak: churn %v outside [0,1]", cfg.Churn)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pc.Close()
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		return err
	}
	defer conn.Close()

	o := newObs("dwcsd-soak", cfg.Dir)
	defer func() {
		if err != nil {
			o.trigger("abnormal exit: " + err.Error())
		}
		if werr := o.writeArtifacts(); werr != nil && err == nil {
			err = werr
		}
	}()

	sentN := o.reg.Counter("soak", "frames_sent_total", "frames paced onto the loopback wire")
	recvN := o.reg.Counter("soak", "frames_received_total", "frames reassembled by the client sessions")
	dropN := o.reg.Counter("soak", "drops_total", "frames dropped by the scheduler (deadline passed)")
	setupN := o.reg.Counter("soak", "sessions_setup_total", "client sessions set up")
	tearN := o.reg.Counter("soak", "sessions_teardown_total", "client sessions torn down by churn")
	goodputH := o.reg.HistogramMetric("soak", "session_goodput_kbps",
		"per-session goodput at teardown", goodputBucketsKbps)
	jitterH := o.reg.HistogramMetric("soak", "jitter_ms",
		"per-frame deviation from the nominal inter-arrival period", telemetry.JitterBucketsMs)
	active := 0
	o.reg.GaugeFunc("soak", "sessions_active",
		"sessions currently streaming", func() float64 { return float64(active) })
	if cfg.Metrics != "" {
		bound, stop, err := serveMetrics(cfg.Metrics, o.render)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "dwcsd: metrics on http://%s/metrics\n", bound)
	}

	now := o.now
	period := sim.Time(cfg.Period)
	// Heaps is the selector built for this scale: best-packet selection
	// stays O(log n) across thousands of streams.
	sched := dwcs.New(dwcs.Config{
		Now:           now,
		Selector:      dwcs.Heaps,
		EligibleEarly: period / 4,
	})

	sessions, plan := soakPlan(cfg)
	byStream := make(map[int]*soakSession, len(sessions))
	// inflight maps (stream,seq) to dispatch time so the receive path can
	// close each frame's wire span. Lost frames leak entries; the cap
	// bounds that at a few MB even on a pathological run.
	inflight := make(map[uint64]sim.Time)
	const inflightCap = 1 << 17
	fkey := func(stream int, seq int64) uint64 { return uint64(uint32(stream))<<32 | uint64(uint32(seq)) }

	// Frame payload: synthetic bytes, sized 256..640 by sequence so every
	// frame fits one datagram and the wire sees some size diversity.
	payload := make([]byte, 1024)
	rand.New(rand.NewSource(2)).Read(payload)
	frameSize := func(seq int64) int64 { return 256 + (seq%4)*128 }

	var jitterSamples, goodputSamples []float64
	// endSession finalizes a session's goodput sample. Caller holds o.mu.
	endSession := func(s *soakSession, at sim.Time) {
		if !s.started || s.ended {
			return
		}
		s.ended, s.endedAt = true, at
		active--
		life := at - s.startedAt
		// Sessions that lived under a few periods have no meaningful rate.
		if life < 4*period {
			return
		}
		kbps := float64(s.bytesRecv*8) / life.Seconds() / 1000
		goodputH.Observe(kbps)
		goodputSamples = append(goodputSamples, kbps)
	}

	reasm := proto.NewReassembler(func(streamID, seq uint32, frame []byte) {
		// Runs under o.mu via the receive goroutine's o.locked below.
		s := byStream[int(streamID)]
		if s == nil {
			return
		}
		at := o.now()
		if t0, ok := inflight[fkey(int(streamID), int64(seq))]; ok {
			delete(inflight, fkey(int(streamID), int64(seq)))
			o.reg.Span(int(streamID), int64(seq), telemetry.StageWire, o.where, t0, at)
		}
		if s.seenRecv {
			gap := (at - s.lastRecv).Milliseconds() - period.Milliseconds()
			if gap < 0 {
				gap = -gap
			}
			jitterH.Observe(gap)
			jitterSamples = append(jitterSamples, gap)
		}
		s.lastRecv, s.seenRecv = at, true
		s.framesRecv++
		s.bytesRecv += int64(len(frame))
		recvN.Inc()
	})

	// Receive goroutine: one loopback socket serves every session.
	recvDone := make(chan struct{})
	recvStopped := make(chan struct{})
	go func() {
		defer close(recvStopped)
		buf := make([]byte, 64<<10)
		for {
			select {
			case <-recvDone:
				return
			default:
			}
			pc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue
				}
				return
			}
			o.locked(func() { _ = reasm.Ingest(buf[:n]) })
		}
	}()
	defer func() {
		close(recvDone)
		<-recvStopped
	}()

	// setup/teardown run under o.mu: they touch the monitor, the recorder,
	// and the session table.
	setup := func(s *soakSession, at sim.Time) error {
		spec := dwcs.StreamSpec{
			ID:     s.id,
			Name:   fmt.Sprintf("s%d", s.id),
			Period: period,
			Loss:   fixed.New(1, 2),
			Lossy:  true,
			BufCap: 16,
		}
		if err := sched.AddStream(spec); err != nil {
			return err
		}
		s.started, s.startedAt, s.inject = true, at, at
		byStream[s.id] = s
		active++
		setupN.Inc()
		o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindMigrate,
			Stream: s.id, Note: "setup"})
		// Track under the already-held lock (o.track would deadlock here).
		// The closure caches its last reading so the objective keeps its
		// final numbers after churn removes the stream.
		id := s.id
		var lastA, lastL int64
		o.mon.Track(slo.FromSpec(spec, 4*period), func() (int64, int64) {
			if st, err := sched.Stats(id); err == nil {
				lastA, lastL = st.Attempts(), st.Losses()
			}
			return lastA, lastL
		})
		return nil
	}
	teardown := func(s *soakSession, at sim.Time) {
		if !s.started || s.ended {
			return
		}
		if err := sched.RemoveStream(s.id); err == nil {
			tearN.Inc()
			o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindMigrate,
				Stream: s.id, Note: "teardown"})
		}
		endSession(s, at)
	}

	emit := func(p *dwcs.Packet) error {
		if cfg.Throttle > 0 {
			time.Sleep(cfg.Throttle)
		}
		txStart := now()
		frame := payload[:p.Bytes]
		for _, frag := range proto.FragmentFrame(uint32(p.StreamID), uint32(p.Seq), frame) {
			if _, err := conn.Write(frag); err != nil {
				return err
			}
		}
		txEnd := now()
		o.locked(func() {
			o.reg.Span(p.StreamID, p.Seq, telemetry.StageQueue, o.where, p.Enqueued, txStart)
			o.reg.Span(p.StreamID, p.Seq, telemetry.StageTx, o.where, txStart, txEnd)
			if len(inflight) < inflightCap {
				inflight[fkey(p.StreamID, p.Seq)] = txEnd
			}
			if s := byStream[p.StreamID]; s != nil {
				s.framesSent++
			}
			sentN.Inc()
			if p.Seq%64 == 0 { // sampled: full decision volume would just churn the ring
				o.rec.Record(blackbox.Event{At: txEnd, Kind: blackbox.KindDecision,
					Stream: p.StreamID, Seq: p.Seq, A: p.Bytes})
			}
		})
		return nil
	}
	drop := func(ps []*dwcs.Packet) {
		if len(ps) == 0 {
			return
		}
		o.locked(func() {
			at := o.now()
			for _, p := range ps {
				dropN.Inc()
				o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindDrop,
					Stream: p.StreamID, Seq: p.Seq, A: p.Bytes, Note: "deadline"})
			}
		})
	}

	// scan processes due plan events and injects due frames; it runs at a
	// bounded cadence so the per-dispatch hot path stays O(1) in sessions.
	planNext := 0
	scan := func(at sim.Time) error {
		var serr error
		o.locked(func() {
			for planNext < len(plan) && plan[planNext].at <= at {
				ev := plan[planNext]
				planNext++
				if ev.setup {
					if serr = setup(ev.sess, at); serr != nil {
						return
					}
				} else {
					teardown(ev.sess, at)
				}
			}
			for _, s := range byStream {
				if s.ended {
					continue
				}
				for s.inject <= at+period {
					sz := frameSize(int64(s.framesSent))
					if sched.Enqueue(s.id, dwcs.Packet{Bytes: sz}) != nil {
						o.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindRefusal,
							Stream: s.id, A: sz, Note: "ring full"})
						break
					}
					s.inject += period
				}
			}
		})
		return serr
	}
	scanEvery := period / 4
	if scanEvery < sim.Millisecond {
		scanEvery = sim.Millisecond
	}
	lastScan := sim.Time(-scanEvery)

	dur := sim.Time(cfg.Dur)
	for now() < dur && !lc.stopped() {
		if at := now(); at-lastScan >= scanEvery {
			lastScan = at
			if err := scan(at); err != nil {
				return err
			}
		}
		d := sched.Schedule()
		switch {
		case d.Packet != nil:
			if err := emit(d.Packet); err != nil {
				return err
			}
		case d.WaitUntil > 0:
			sleep := time.Duration(d.WaitUntil - now())
			if sleep > time.Millisecond {
				sleep = time.Millisecond
			}
			if sleep > 0 {
				time.Sleep(sleep)
			}
		default:
			if len(d.Dropped) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		drop(d.Dropped)
		o.tick()
	}

	interrupted := lc.stopped()
	if interrupted {
		// Same drain contract as plain serve mode: no new injections, queued
		// frames go out on their pacing, bounded by the drain deadline.
		o.trigger("interrupted")
		drained := 0
		deadline := time.Now().Add(cfg.Drain)
		for time.Now().Before(deadline) {
			d := sched.Schedule()
			drop(d.Dropped)
			switch {
			case d.Packet != nil:
				if err := emit(d.Packet); err != nil {
					return err
				}
				drained++
			case d.WaitUntil > 0:
				time.Sleep(time.Millisecond)
			default:
				if len(d.Dropped) == 0 {
					deadline = time.Time{}
				}
			}
			o.tick()
		}
		fmt.Fprintf(out, "dwcsd: interrupted; drained %d queued frame(s)\n", drained)
	}

	// Give the last datagrams a beat to cross the loopback, then finalize
	// every still-active session's goodput sample.
	time.Sleep(150 * time.Millisecond)
	var summary string
	o.locked(func() {
		at := o.now()
		for _, s := range sessions {
			endSession(s, at)
		}
		gp50, gp95 := quantile(goodputSamples, 0.50), quantile(goodputSamples, 0.95)
		jp50, jp95 := quantile(jitterSamples, 0.50), quantile(jitterSamples, 0.95)
		sent, recvd, drops := sentN.Value(), recvN.Value(), dropN.Value()
		ratio := 0.0
		if sent+drops > 0 {
			ratio = float64(drops) / float64(sent+drops)
		}
		summary = fmt.Sprintf("soak summary: target=%d setups=%d teardowns=%d frames_sent=%d frames_recv=%d drops=%d drop_ratio=%.4f goodput_kbps_p50=%.1f goodput_kbps_p95=%.1f jitter_ms_p50=%.2f jitter_ms_p95=%.2f",
			cfg.Sessions, setupN.Value(), tearN.Value(), sent, recvd, drops, ratio,
			gp50, gp95, jp50, jp95)
	})
	fmt.Fprintln(out, summary)
	if interrupted {
		fmt.Fprintln(out, "dwcsd: soak interrupted; partial run reported")
	}
	return nil
}
