package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleetobs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// stagesDir writes an artifact directory holding a real StageTable whose
// queue-stage latency is scaled by num/den.
func stagesDir(t *testing.T, num, den sim.Time) string {
	t.Helper()
	var l telemetry.SpanLog
	for i := 0; i < 50; i++ {
		base := sim.Time(i) * sim.Millisecond
		l.Record(telemetry.Segment{Stream: 1, Seq: int64(i), Stage: telemetry.StageQueue,
			Where: "ni0", Start: base, End: base + (2*sim.Millisecond*num)/den})
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stages.txt"), []byte(l.StageTable()), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDiffExitCodes(t *testing.T) {
	clean := stagesDir(t, 1, 1)
	slow := stagesDir(t, 6, 5) // 20% queue-latency regression

	var out, errOut strings.Builder
	if code := run([]string{"-diff", clean, clean}, &out, &errOut); code != exitOK {
		t.Fatalf("identical dirs: exit %d, want %d\n%s%s", code, exitOK, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "no significant differences") {
		t.Fatalf("clean table:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-diff", clean, slow}, &out, &errOut); code != exitRegression {
		t.Fatalf("20%% regression: exit %d, want %d\n%s", code, exitRegression, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression table:\n%s", out.String())
	}

	// A loose threshold lets the same delta pass.
	out.Reset()
	if code := run([]string{"-diff", "-diff-threshold", "0.5", clean, slow}, &out, &errOut); code != exitOK {
		t.Fatalf("threshold 0.5: exit %d, want %d\n%s", code, exitOK, out.String())
	}

	// JSON verdict carries the same regression bit.
	out.Reset()
	if code := run([]string{"-diff", "-diff-json", clean, slow}, &out, &errOut); code != exitRegression {
		t.Fatalf("json mode: exit %d", code)
	}
	if !strings.Contains(out.String(), `"regression": true`) {
		t.Fatalf("json:\n%s", out.String())
	}
}

func TestTimelineMode(t *testing.T) {
	// Render a real timeline artifact through the same code path the fleet
	// writer uses, so the parser here is tested against the writer's format.
	tl := fleetobs.NewTimeline()
	tl.Add(fleetobs.TimelineEvent{At: sim.Second, Src: fleetobs.SrcController,
		SrcName: "dvcm", Kind: "scrape-dark", Note: "ni04 answered nothing"})
	tl.Add(fleetobs.TimelineEvent{At: sim.Second, Src: 4, SrcName: "ni04",
		Host: "h02", Switch: "sw1", Kind: "domain-fault", Note: "host-crash h02"})
	tl.Add(fleetobs.TimelineEvent{At: 2 * sim.Second, Src: fleetobs.SrcController,
		SrcName: "dvcm", Kind: "migrate-live", Stream: 9, Seq: 44,
		Note: "ni04→ni06 epoch 0→1"})
	file := filepath.Join(t.TempDir(), "timeline.txt")
	if err := os.WriteFile(file, []byte(tl.Render()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-timeline", file}, &out, &errOut); code != exitOK {
		t.Fatalf("unfiltered: exit %d\n%s", code, errOut.String())
	}
	for _, want := range []string{"3 of 3 event(s) match", "scrape-dark", "events by kind:", "events by source:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("unfiltered output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-timeline", file, "-kind", "scrape"}, &out, &errOut); code != exitOK {
		t.Fatalf("-kind: exit %d", code)
	}
	if !strings.Contains(out.String(), "1 of 3 event(s) match") ||
		strings.Contains(out.String(), "domain-fault") {
		t.Fatalf("-kind scrape output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-timeline", file, "-stream", "9"}, &out, &errOut); code != exitOK {
		t.Fatalf("-stream: exit %d", code)
	}
	if !strings.Contains(out.String(), "1 of 3 event(s) match") ||
		!strings.Contains(out.String(), "migrate-live") {
		t.Fatalf("-stream 9 output:\n%s", out.String())
	}

	// -src keeps one source's rows — exact match, so "ni04" must not also
	// match a detail that mentions ni04.
	out.Reset()
	if code := run([]string{"-timeline", file, "-src", "ni04"}, &out, &errOut); code != exitOK {
		t.Fatalf("-src: exit %d", code)
	}
	if !strings.Contains(out.String(), "1 of 3 event(s) match") ||
		!strings.Contains(out.String(), "domain-fault") ||
		strings.Contains(out.String(), "scrape-dark") {
		t.Fatalf("-src ni04 output:\n%s", out.String())
	}

	// Garbage input is a parse error, not a crash.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not a timeline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-timeline", bad}, &out, &errOut); code != exitParse {
		t.Fatalf("garbage timeline: exit %d, want %d", code, exitParse)
	}
}

func TestUsageAndParseExitCodes(t *testing.T) {
	var out, errOut strings.Builder

	// Usage errors: unknown flag, -diff arity, no mode selected.
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != exitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-diff", "onlyone"}, &out, &errOut); code != exitUsage {
		t.Fatalf("-diff arity: exit %d, want %d", code, exitUsage)
	}
	errOut.Reset()
	if code := run(nil, &out, &errOut); code != exitUsage {
		t.Fatalf("no mode: exit %d, want %d", code, exitUsage)
	}
	// The usage block lists every mode and the exit-code contract.
	usage := errOut.String()
	for _, want := range []string{"-in", "-checkprom", "-pressure", "-diff",
		"exit codes: 0 ok, 1 usage, 2 parse error, 3 regression"} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}

	// Parse errors: malformed artifact directory, unreadable trace.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "metrics.csv"), []byte("not,a,header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-diff", bad, bad}, &out, &errOut); code != exitParse {
		t.Fatalf("malformed dir: exit %d, want %d", code, exitParse)
	}
	if code := run([]string{"-in", filepath.Join(bad, "absent.json")}, &out, &errOut); code != exitParse {
		t.Fatalf("missing trace: exit %d, want %d", code, exitParse)
	}
}

// TestDiffConformanceMode pins the sim-vs-real gate: the same 20% queue
// drift that regresses in exact mode is tolerated under -conformance
// (wall-clock threshold 0.50), a 2x drift still fails, and the report
// names the mode.
func TestDiffConformanceMode(t *testing.T) {
	clean := stagesDir(t, 1, 1)
	drift := stagesDir(t, 6, 5)
	double := stagesDir(t, 2, 1)

	var out, errOut strings.Builder
	if code := run([]string{"-diff", "-conformance", clean, drift}, &out, &errOut); code != exitOK {
		t.Fatalf("20%% drift under -conformance: exit %d, want %d\n%s%s",
			code, exitOK, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "mode: conformance") {
		t.Fatalf("report missing mode line:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-diff", "-conformance", clean, double}, &out, &errOut); code != exitRegression {
		t.Fatalf("2x drift under -conformance: exit %d, want %d\n%s", code, exitRegression, out.String())
	}

	// An explicit threshold still overrides the conformance default.
	out.Reset()
	if code := run([]string{"-diff", "-conformance", "-diff-threshold", "0.1", clean, drift}, &out, &errOut); code != exitRegression {
		t.Fatalf("explicit threshold under -conformance: exit %d, want %d\n%s", code, exitRegression, out.String())
	}
}
