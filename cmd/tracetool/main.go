// Command tracetool inspects and transforms the diagnostic artifacts written
// by reprogen and clustersim: Chrome trace-event dumps, Prometheus text
// dumps, metrics.csv snapshot dumps, and whole artifact directories.
//
// Usage:
//
//	tracetool -in trace.json                     # re-emit canonically (stdout)
//	tracetool -in a.json -in b.json -out m.json  # merge traces
//	tracetool -in trace.json -stream 2           # keep one stream
//	tracetool -in trace.json -stage wire         # keep one stage
//	tracetool -in trace.json -where ni-sched     # filter by location substring
//	tracetool -in trace.json -summary            # per-stage event counts
//	tracetool -checkprom metrics.prom            # validate a Prometheus dump
//	tracetool -pressure metrics.csv              # overload pressure view
//	tracetool -timeline timeline.txt             # fleet incident timeline view
//	tracetool -timeline t.txt -stream 9          # one stream's incident history
//	tracetool -timeline t.txt -kind migrate      # one event kind
//	tracetool -timeline t.txt -src ctl-b         # one source's rows (a card, or
//	                                             # a controller replica)
//	tracetool -diff dirA dirB                    # run-diff two artifact dirs
//	tracetool -diff -conformance simdir realdir  # sim-vs-real conformance diff
//
// Exit codes (all modes):
//
//	0  success, and (for -diff) no regression
//	1  usage error: bad flags, missing inputs
//	2  parse error: unreadable or malformed artifact
//	3  regression: -diff found at least one regression
//
// Trace output always goes through the same canonical writer the exporters
// use, so a filter-free pass re-emits its input byte-identically — the
// property CI relies on. The -diff mode is the CI perf gate: it compares
// stages.txt, metrics.csv, ladder.txt, cycles.txt, and the fleet-obs
// rollup.txt/timeline.txt between two artifact directories against a
// relative threshold and exits 3 on regression — rollup findings name the
// failing switch domain.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/overload"
	"repro/internal/rundiff"
	"repro/internal/telemetry"
)

// Exit codes. Documented in the package comment and pinned by tests.
const (
	exitOK         = 0
	exitUsage      = 1
	exitParse      = 2
	exitRegression = 3
)

// multiFlag collects repeated -in values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can assert exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ins multiFlag
	fs.Var(&ins, "in", "input trace JSON (repeatable; inputs are merged)")
	out := fs.String("out", "", "output file (default stdout)")
	stream := fs.Int("stream", 0, "keep only events of this stream id")
	stage := fs.String("stage", "", "keep only events of this stage (disk, bus, queue, tx, wire, playout)")
	where := fs.String("where", "", "keep only events whose location contains this substring")
	summary := fs.Bool("summary", false, "print per-stage event counts instead of JSON")
	checkprom := fs.String("checkprom", "", "validate a Prometheus text dump and exit")
	pressure := fs.String("pressure", "", "render the overload pressure view from a metrics.csv snapshot dump and exit")
	timeline := fs.String("timeline", "", "filter/summarize a fleet incident timeline artifact and exit (-stream, -kind, -src)")
	kind := fs.String("kind", "", "keep only timeline events of this kind (with -timeline)")
	src := fs.String("src", "", "keep only timeline events from this source, e.g. ni03 or ctl-b (with -timeline)")
	diff := fs.Bool("diff", false, "compare two artifact directories (positional: dirA dirB); exit 3 on regression")
	diffThreshold := fs.Float64("diff-threshold", 0, "relative delta beyond which a -diff series regresses (default 0.10, or 0.50 with -conformance)")
	diffJSON := fs.Bool("diff-json", false, "emit the -diff report as JSON instead of a table")
	conformance := fs.Bool("conformance", false, "with -diff: sim-vs-real mode — wall-clock tolerances, max latency informational")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tracetool [mode flags]")
		fmt.Fprintln(stderr, "modes:")
		fmt.Fprintln(stderr, "  -in trace.json [...]   filter/merge/re-emit Chrome traces (-stream, -stage, -where, -summary, -out)")
		fmt.Fprintln(stderr, "  -checkprom dump.prom   validate a Prometheus text dump")
		fmt.Fprintln(stderr, "  -pressure metrics.csv  overload pressure view of a snapshot dump")
		fmt.Fprintln(stderr, "  -timeline timeline.txt fleet incident timeline view (-stream, -kind, -src)")
		fmt.Fprintln(stderr, "  -diff dirA dirB        run-diff two artifact directories (-diff-threshold, -diff-json, -conformance)")
		fmt.Fprintln(stderr, "exit codes: 0 ok, 1 usage, 2 parse error, 3 regression")
		fmt.Fprintln(stderr, "flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *diff {
		return runDiff(fs.Args(), *diffThreshold, *diffJSON, *conformance, stdout, stderr)
	}

	if *timeline != "" {
		data, err := os.ReadFile(*timeline)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return exitParse
		}
		if err := printTimeline(stdout, string(data), *stream, *kind, *src); err != nil {
			fmt.Fprintf(stderr, "tracetool: %s: %v\n", *timeline, err)
			return exitParse
		}
		return exitOK
	}

	if *pressure != "" {
		data, err := os.ReadFile(*pressure)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return exitParse
		}
		if err := printPressure(stdout, string(data)); err != nil {
			fmt.Fprintf(stderr, "tracetool: %s: %v\n", *pressure, err)
			return exitParse
		}
		return exitOK
	}

	if *checkprom != "" {
		data, err := os.ReadFile(*checkprom)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return exitParse
		}
		families, samples, err := telemetry.CheckPrometheus(string(data))
		if err != nil {
			fmt.Fprintf(stderr, "tracetool: %s: %v\n", *checkprom, err)
			return exitParse
		}
		fmt.Fprintf(stdout, "%s: ok (%d families, %d samples)\n", *checkprom, families, samples)
		return exitOK
	}

	if len(ins) == 0 {
		fmt.Fprintln(stderr, "tracetool: need at least one -in (or -checkprom/-pressure/-diff)")
		fs.Usage()
		return exitUsage
	}

	var events []telemetry.ChromeEvent
	for _, in := range ins {
		data, err := os.ReadFile(in)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return exitParse
		}
		evs, err := telemetry.UnmarshalChrome(data)
		if err != nil {
			fmt.Fprintf(stderr, "tracetool: %s: %v\n", in, err)
			return exitParse
		}
		events = append(events, evs...)
	}

	kept := events[:0]
	for _, e := range events {
		if *stream != 0 && e.Args.Stream != *stream {
			continue
		}
		if *stage != "" && e.Name != *stage {
			continue
		}
		if *where != "" && !strings.Contains(e.Args.Where, *where) {
			continue
		}
		kept = append(kept, e)
	}

	if *summary {
		printSummary(stdout, kept)
		return exitOK
	}

	raw, err := telemetry.MarshalChrome(kept)
	if err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		return exitParse
	}
	if *out == "" {
		stdout.Write(raw)
		return exitOK
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		return exitParse
	}
	return exitOK
}

// runDiff is the CI perf gate: compare two artifact directories and exit 3
// when any series regressed past the threshold. With conformance set it
// runs the sim-vs-real mode: one side was measured on a wall clock, so
// tolerances widen and per-stage max latency is informational.
func runDiff(dirs []string, threshold float64, asJSON, conformance bool, stdout, stderr io.Writer) int {
	if len(dirs) != 2 {
		fmt.Fprintln(stderr, "tracetool: -diff needs exactly two directories: dirA (baseline) dirB (candidate)")
		return exitUsage
	}
	rep, err := rundiff.DiffDirs(dirs[0], dirs[1],
		rundiff.Options{Threshold: threshold, WallClock: conformance})
	if err != nil {
		if errors.Is(err, rundiff.ErrParse) {
			fmt.Fprintln(stderr, "tracetool:", err)
			return exitParse
		}
		fmt.Fprintln(stderr, "tracetool:", err)
		return exitUsage
	}
	if asJSON {
		fmt.Fprintln(stdout, rep.JSON())
	} else {
		fmt.Fprint(stdout, rep.Table())
	}
	if rep.Regression() {
		return exitRegression
	}
	return exitOK
}

// printSummary tallies events per stage: count and total duration.
func printSummary(w io.Writer, events []telemetry.ChromeEvent) {
	type agg struct {
		count int
		durUs float64
	}
	byStage := make(map[string]*agg)
	for _, e := range events {
		a := byStage[e.Name]
		if a == nil {
			a = &agg{}
			byStage[e.Name] = a
		}
		a.count++
		a.durUs += e.Dur
	}
	stages := make([]string, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	fmt.Fprintf(w, "%-10s %10s %14s\n", "stage", "events", "total_us")
	for _, s := range stages {
		a := byStage[s]
		fmt.Fprintf(w, "%-10s %10d %14.2f\n", s, a.count, a.durUs)
	}
	fmt.Fprintf(w, "%-10s %10d\n", "total", len(events))
}

// printTimeline filters a fleet incident timeline artifact (the fixed-column
// form Timeline.Render writes: t, src, host, sw, kind, detail) and tallies
// the surviving events per kind and per source. stream matches the
// "stream=N" prefix the renderer puts on stream-scoped details; kind is a
// substring match so "scrape" covers scrape-dark/-degrade/-restore at once;
// src is an exact match on the source column (a card like "ni03", or a
// controller replica like "ctl-b" on the control-plane timeline).
func printTimeline(w io.Writer, content string, stream int, kind, src string) error {
	lines := strings.Split(strings.TrimRight(content, "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "incident timeline:") {
		return fmt.Errorf("not an incident timeline artifact (header %q)", lines[0])
	}
	streamTag := fmt.Sprintf("stream=%d ", stream)
	byKind := make(map[string]int)
	bySrc := make(map[string]int)
	var kept []string
	for _, line := range lines[2:] {
		f := strings.Fields(line)
		if len(f) < 5 {
			return fmt.Errorf("malformed timeline line %q", line)
		}
		s, k := f[1], f[4]
		detail := strings.Join(f[5:], " ")
		if kind != "" && !strings.Contains(k, kind) {
			continue
		}
		if src != "" && s != src {
			continue
		}
		if stream != 0 && !strings.HasPrefix(detail, streamTag) && detail != strings.TrimSpace(streamTag) {
			continue
		}
		kept = append(kept, line)
		byKind[k]++
		bySrc[s]++
	}
	fmt.Fprintf(w, "%d of %d event(s) match\n", len(kept), len(lines)-2)
	fmt.Fprintln(w, lines[1])
	for _, line := range kept {
		fmt.Fprintln(w, line)
	}
	for _, sec := range []struct {
		header string
		counts map[string]int
	}{{"events by kind:", byKind}, {"events by source:", bySrc}} {
		header, counts := sec.header, sec.counts
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, header)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-14s %d\n", k, counts[k])
		}
	}
	return nil
}

// printPressure renders the overload controller's view of a metrics.csv
// snapshot dump (time_ms,component,metric,value): budget occupancy, the
// degradation ladder's position and per-rung shed counts, admission verdicts,
// and backpressure activity — each series at its last snapshot.
func printPressure(w io.Writer, csv string) error {
	last := make(map[string]map[string]float64) // component → metric → value
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "time_ms,component,metric,value") {
		return fmt.Errorf("not a metrics.csv dump (header %q)", lines[0])
	}
	for i, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return fmt.Errorf("line %d: %d fields", i+2, len(parts))
		}
		v, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return fmt.Errorf("line %d: %w", i+2, err)
		}
		m := last[parts[1]]
		if m == nil {
			m = make(map[string]float64)
			last[parts[1]] = m
		}
		m[parts[2]] = v // rows are time-ordered; keep the latest sample
	}
	ov := last["overload"]
	if len(ov) == 0 {
		return fmt.Errorf("no overload metrics — was the run armed with -overload?")
	}
	used, size, peak := ov["budget_used_bytes"], ov["budget_size_bytes"], ov["budget_peak_bytes"]
	fmt.Fprintln(w, "overload pressure (last snapshot per series)")
	if size > 0 {
		fmt.Fprintf(w, "  budget: used %.0f B of %.0f B (%.1f%%), peak %.0f B (%.1f%%)\n",
			used, size, 100*used/size, peak, 100*peak/size)
	}
	rung := overload.Rung(int(ov["ladder_rung"]))
	fmt.Fprintf(w, "  ladder: rung %s, %.0f transition(s)\n", rung, ov["ladder_transitions_total"])
	fmt.Fprintf(w, "  shed by rung: tolerant %.0f, B frames %.0f, P frames %.0f, revoked %.0f (reinstated %.0f)\n",
		ov["shed_tolerant_total"], ov["shed_b_frames_total"], ov["shed_p_frames_total"],
		ov["revoked_total"], ov["reinstated_total"])
	fmt.Fprintf(w, "  admission: rejects %.0f, breaches %.0f\n",
		ov["admission_rejects_total"], ov["budget_breaches_total"])
	fmt.Fprintf(w, "  backpressure: engages %.0f, releases %.0f, source stalls %.0f\n",
		ov["backpressure_engages_total"], ov["backpressure_releases_total"], ov["source_stalls_total"])
	// Queue/drop pressure seen by the rest of the pipeline, per component.
	comps := make([]string, 0, len(last))
	for c := range last {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		if c == "overload" {
			continue
		}
		var rows []string
		for name, v := range last[c] {
			if strings.Contains(name, "drop") || strings.Contains(name, "reject") ||
				strings.Contains(name, "stall") || strings.Contains(name, "queue") {
				rows = append(rows, fmt.Sprintf("%s=%.0f", name, v))
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Strings(rows)
		fmt.Fprintf(w, "  %s: %s\n", c, strings.Join(rows, " "))
	}
	return nil
}
