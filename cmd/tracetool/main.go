// Command tracetool inspects and transforms the Chrome trace-event dumps
// written by reprogen -telemetry and clustersim -telemetry.
//
// Usage:
//
//	tracetool -in trace.json                     # re-emit canonically (stdout)
//	tracetool -in a.json -in b.json -out m.json  # merge traces
//	tracetool -in trace.json -stream 2           # keep one stream
//	tracetool -in trace.json -stage wire         # keep one stage
//	tracetool -in trace.json -where ni-sched     # filter by location substring
//	tracetool -in trace.json -summary            # per-stage event counts
//	tracetool -checkprom metrics.prom            # validate a Prometheus dump
//	tracetool -pressure metrics.csv              # overload pressure view
//
// Output always goes through the same canonical writer the exporters use, so
// a filter-free pass re-emits its input byte-identically — the property CI
// relies on.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/overload"
	"repro/internal/telemetry"
)

// multiFlag collects repeated -in values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var ins multiFlag
	flag.Var(&ins, "in", "input trace JSON (repeatable; inputs are merged)")
	out := flag.String("out", "", "output file (default stdout)")
	stream := flag.Int("stream", 0, "keep only events of this stream id")
	stage := flag.String("stage", "", "keep only events of this stage (disk, bus, queue, tx, wire, playout)")
	where := flag.String("where", "", "keep only events whose location contains this substring")
	summary := flag.Bool("summary", false, "print per-stage event counts instead of JSON")
	checkprom := flag.String("checkprom", "", "validate a Prometheus text dump and exit")
	pressure := flag.String("pressure", "", "render the overload pressure view from a metrics.csv snapshot dump and exit")
	flag.Parse()

	if *pressure != "" {
		data, err := os.ReadFile(*pressure)
		if err != nil {
			fatal(err)
		}
		if err := printPressure(string(data)); err != nil {
			fatal(fmt.Errorf("%s: %w", *pressure, err))
		}
		return
	}

	if *checkprom != "" {
		data, err := os.ReadFile(*checkprom)
		if err != nil {
			fatal(err)
		}
		families, samples, err := telemetry.CheckPrometheus(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *checkprom, err))
		}
		fmt.Printf("%s: ok (%d families, %d samples)\n", *checkprom, families, samples)
		return
	}

	if len(ins) == 0 {
		fmt.Fprintln(os.Stderr, "tracetool: need at least one -in (or -checkprom)")
		flag.Usage()
		os.Exit(2)
	}

	var events []telemetry.ChromeEvent
	for _, in := range ins {
		data, err := os.ReadFile(in)
		if err != nil {
			fatal(err)
		}
		evs, err := telemetry.UnmarshalChrome(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", in, err))
		}
		events = append(events, evs...)
	}

	kept := events[:0]
	for _, e := range events {
		if *stream != 0 && e.Args.Stream != *stream {
			continue
		}
		if *stage != "" && e.Name != *stage {
			continue
		}
		if *where != "" && !strings.Contains(e.Args.Where, *where) {
			continue
		}
		kept = append(kept, e)
	}

	if *summary {
		printSummary(kept)
		return
	}

	raw, err := telemetry.MarshalChrome(kept)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
}

// printSummary tallies events per stage: count and total duration.
func printSummary(events []telemetry.ChromeEvent) {
	type agg struct {
		count int
		durUs float64
	}
	byStage := make(map[string]*agg)
	for _, e := range events {
		a := byStage[e.Name]
		if a == nil {
			a = &agg{}
			byStage[e.Name] = a
		}
		a.count++
		a.durUs += e.Dur
	}
	stages := make([]string, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	fmt.Printf("%-10s %10s %14s\n", "stage", "events", "total_us")
	for _, s := range stages {
		a := byStage[s]
		fmt.Printf("%-10s %10d %14.2f\n", s, a.count, a.durUs)
	}
	fmt.Printf("%-10s %10d\n", "total", len(events))
}

// printPressure renders the overload controller's view of a metrics.csv
// snapshot dump (time_ms,component,metric,value): budget occupancy, the
// degradation ladder's position and per-rung shed counts, admission verdicts,
// and backpressure activity — each series at its last snapshot.
func printPressure(csv string) error {
	last := make(map[string]map[string]float64) // component → metric → value
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "time_ms,component,metric,value") {
		return fmt.Errorf("not a metrics.csv dump (header %q)", lines[0])
	}
	for i, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return fmt.Errorf("line %d: %d fields", i+2, len(parts))
		}
		v, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return fmt.Errorf("line %d: %w", i+2, err)
		}
		m := last[parts[1]]
		if m == nil {
			m = make(map[string]float64)
			last[parts[1]] = m
		}
		m[parts[2]] = v // rows are time-ordered; keep the latest sample
	}
	ov := last["overload"]
	if len(ov) == 0 {
		return fmt.Errorf("no overload metrics — was the run armed with -overload?")
	}
	used, size, peak := ov["budget_used_bytes"], ov["budget_size_bytes"], ov["budget_peak_bytes"]
	fmt.Println("overload pressure (last snapshot per series)")
	if size > 0 {
		fmt.Printf("  budget: used %.0f B of %.0f B (%.1f%%), peak %.0f B (%.1f%%)\n",
			used, size, 100*used/size, peak, 100*peak/size)
	}
	rung := overload.Rung(int(ov["ladder_rung"]))
	fmt.Printf("  ladder: rung %s, %.0f transition(s)\n", rung, ov["ladder_transitions_total"])
	fmt.Printf("  shed by rung: tolerant %.0f, B frames %.0f, P frames %.0f, revoked %.0f (reinstated %.0f)\n",
		ov["shed_tolerant_total"], ov["shed_b_frames_total"], ov["shed_p_frames_total"],
		ov["revoked_total"], ov["reinstated_total"])
	fmt.Printf("  admission: rejects %.0f, breaches %.0f\n",
		ov["admission_rejects_total"], ov["budget_breaches_total"])
	fmt.Printf("  backpressure: engages %.0f, releases %.0f, source stalls %.0f\n",
		ov["backpressure_engages_total"], ov["backpressure_releases_total"], ov["source_stalls_total"])
	// Queue/drop pressure seen by the rest of the pipeline, per component.
	comps := make([]string, 0, len(last))
	for c := range last {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		if c == "overload" {
			continue
		}
		var rows []string
		for name, v := range last[c] {
			if strings.Contains(name, "drop") || strings.Contains(name, "reject") ||
				strings.Contains(name, "stall") || strings.Contains(name, "queue") {
				rows = append(rows, fmt.Sprintf("%s=%.0f", name, v))
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Strings(rows)
		fmt.Printf("  %s: %s\n", c, strings.Join(rows, " "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}
