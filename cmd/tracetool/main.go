// Command tracetool inspects and transforms the Chrome trace-event dumps
// written by reprogen -telemetry and clustersim -telemetry.
//
// Usage:
//
//	tracetool -in trace.json                     # re-emit canonically (stdout)
//	tracetool -in a.json -in b.json -out m.json  # merge traces
//	tracetool -in trace.json -stream 2           # keep one stream
//	tracetool -in trace.json -stage wire         # keep one stage
//	tracetool -in trace.json -where ni-sched     # filter by location substring
//	tracetool -in trace.json -summary            # per-stage event counts
//	tracetool -checkprom metrics.prom            # validate a Prometheus dump
//
// Output always goes through the same canonical writer the exporters use, so
// a filter-free pass re-emits its input byte-identically — the property CI
// relies on.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// multiFlag collects repeated -in values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var ins multiFlag
	flag.Var(&ins, "in", "input trace JSON (repeatable; inputs are merged)")
	out := flag.String("out", "", "output file (default stdout)")
	stream := flag.Int("stream", 0, "keep only events of this stream id")
	stage := flag.String("stage", "", "keep only events of this stage (disk, bus, queue, tx, wire, playout)")
	where := flag.String("where", "", "keep only events whose location contains this substring")
	summary := flag.Bool("summary", false, "print per-stage event counts instead of JSON")
	checkprom := flag.String("checkprom", "", "validate a Prometheus text dump and exit")
	flag.Parse()

	if *checkprom != "" {
		data, err := os.ReadFile(*checkprom)
		if err != nil {
			fatal(err)
		}
		families, samples, err := telemetry.CheckPrometheus(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *checkprom, err))
		}
		fmt.Printf("%s: ok (%d families, %d samples)\n", *checkprom, families, samples)
		return
	}

	if len(ins) == 0 {
		fmt.Fprintln(os.Stderr, "tracetool: need at least one -in (or -checkprom)")
		flag.Usage()
		os.Exit(2)
	}

	var events []telemetry.ChromeEvent
	for _, in := range ins {
		data, err := os.ReadFile(in)
		if err != nil {
			fatal(err)
		}
		evs, err := telemetry.UnmarshalChrome(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", in, err))
		}
		events = append(events, evs...)
	}

	kept := events[:0]
	for _, e := range events {
		if *stream != 0 && e.Args.Stream != *stream {
			continue
		}
		if *stage != "" && e.Name != *stage {
			continue
		}
		if *where != "" && !strings.Contains(e.Args.Where, *where) {
			continue
		}
		kept = append(kept, e)
	}

	if *summary {
		printSummary(kept)
		return
	}

	raw, err := telemetry.MarshalChrome(kept)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
}

// printSummary tallies events per stage: count and total duration.
func printSummary(events []telemetry.ChromeEvent) {
	type agg struct {
		count int
		durUs float64
	}
	byStage := make(map[string]*agg)
	for _, e := range events {
		a := byStage[e.Name]
		if a == nil {
			a = &agg{}
			byStage[e.Name] = a
		}
		a.count++
		a.durUs += e.Dur
	}
	stages := make([]string, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	fmt.Printf("%-10s %10s %14s\n", "stage", "events", "total_us")
	for _, s := range stages {
		a := byStage[s]
		fmt.Printf("%-10s %10d %14.2f\n", s, a.count, a.durUs)
	}
	fmt.Printf("%-10s %10d\n", "total", len(events))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}
