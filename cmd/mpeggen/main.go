// Command mpeggen generates synthetic MPEG-1 clips (the reproduction's
// stand-in for the paper's MPEG test files) and segments existing ones.
//
// Usage:
//
//	mpeggen -o clip.mpg                      # the paper's 773665-byte clip
//	mpeggen -frames 300 -fps 25 -o clip.mpg  # custom clip
//	mpeggen -segment clip.mpg                # print the frame table
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpeg"
)

func main() {
	frames := flag.Int("frames", 151, "number of frames")
	fps := flag.Int("fps", 30, "frame rate")
	gop := flag.String("gop", "IBBPBBPBB", "GOP pattern")
	size := flag.Int64("size", 773665, "exact target size in bytes (0 = use -mean)")
	mean := flag.Int64("mean", 4096, "mean frame size when -size is 0")
	seed := flag.Int64("seed", 1960, "generation seed")
	out := flag.String("o", "", "output file ('-' or empty prints a summary only)")
	segment := flag.String("segment", "", "segment an existing file and print its frame table")
	flag.Parse()

	if *segment != "" {
		data, err := os.ReadFile(*segment)
		if err != nil {
			fatal(err)
		}
		clip, err := mpeg.Segment(data)
		if err != nil {
			fatal(err)
		}
		printTable(clip)
		return
	}

	clip, err := mpeg.Generate(mpeg.GenConfig{
		Frames: *frames, FPS: *fps, GOPPattern: *gop,
		TargetSize: *size, MeanFrame: *mean, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if *out != "" && *out != "-" {
		if err := os.WriteFile(*out, mpeg.Encode(clip, *seed), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: ", *out)
	}
	i, p, b := clip.CountByType()
	fmt.Printf("%d frames (%dI/%dP/%dB), %d bytes, %d fps, ≈%d bps\n",
		len(clip.Frames), i, p, b, clip.Bytes, clip.FPS, clip.BitrateBps())
}

func printTable(clip *mpeg.Clip) {
	fmt.Printf("fps=%d frames=%d bytes=%d\n", clip.FPS, len(clip.Frames), clip.Bytes)
	fmt.Println("index  type  offset     size")
	for _, f := range clip.Frames {
		fmt.Printf("%5d  %4s  %9d  %6d\n", f.Index, f.Type, f.Offset, f.Size)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpeggen:", err)
	os.Exit(1)
}
