// Command reprogen regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	reprogen                 # everything
//	reprogen -table 4        # one table (1–5)
//	reprogen -figure 9       # one figure (6–10)
//	reprogen -headline       # the 50 µs vs 65 µs headline
//	reprogen -faults         # fault-recovery chaos experiment (opt-in)
//	reprogen -telemetry      # instrumented observability run (opt-in)
//	reprogen -overload       # overload-protection sweep, claim 4 (opt-in)
//	reprogen -slo            # chaos-diagnostics run: flight recorder + SLO (opt-in)
//	reprogen -csv out/       # also dump the figure curves as CSV files
//	reprogen -dur 60         # figure observation length in seconds
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-5)")
	figure := flag.Int("figure", 0, "regenerate one figure (6-10)")
	headline := flag.Bool("headline", false, "regenerate the headline overhead comparison")
	scaling := flag.Bool("scaling", false, "run the stream-count scaling study (§6 future work)")
	faultsRun := flag.Bool("faults", false, "run the fault-recovery chaos experiment (strictly opt-in)")
	telemetryRun := flag.Bool("telemetry", false, "run the instrumented observability demonstration (strictly opt-in)")
	telemetryOut := flag.String("telemetry-out", "telemetry-out", "directory for -telemetry artifacts")
	overloadRun := flag.Bool("overload", false, "run the overload-protection sweep (strictly opt-in)")
	overloadOut := flag.String("overload-out", "overload-out", "directory for -overload artifacts")
	sloRun := flag.Bool("slo", false, "run the chaos-diagnostics experiment: flight recorder, SLO monitor, incident dumps (strictly opt-in)")
	sloOut := flag.String("slo-out", "slo-out", "directory for -slo artifacts")
	overloadWorkers := flag.Int("overload-workers", 0, "worker pool for the overload sweep (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "directory to write figure curves as CSV")
	durSec := flag.Int("dur", 100, "figure observation length (seconds)")
	workers := flag.Int("workers", 0, "worker pool for every experiment fan-out (0 = GOMAXPROCS, 1 = sequential); never changes output bytes")
	flag.Parse()
	experiments.DefaultWorkers = *workers

	dur := sim.Time(*durSec) * sim.Second
	// Chaos and telemetry never ride along with the paper's tables and
	// figures: -faults and -telemetry are their own selections, so default
	// runs are bit-identical with or without those subsystems present.
	all := *table == 0 && *figure == 0 && !*headline && !*scaling && !*faultsRun && !*telemetryRun && !*overloadRun && !*sloRun

	// Every table, figure bundle, and sweep is an independent simulation:
	// fan the selected set across the worker pool, then print in the fixed
	// report order so the output is byte-identical to a sequential run.
	var (
		hostFigs                             *experiments.HostFigures
		niFigs                               *experiments.NIFigures
		faultRec                             *experiments.FaultRecovery
		telArt                               *experiments.TelemetryArtifacts
		ovArt                                *experiments.OverloadArtifacts
		sloArt                               *experiments.DiagnosticsArtifacts
		t1, t2, t3, t4, t5, headlineRes, sca *experiments.Result
	)
	needHost := all || (*figure >= 6 && *figure <= 8)
	needNI := all || *figure == 9 || *figure == 10

	var jobs []func()
	add := func(cond bool, job func()) {
		if cond {
			jobs = append(jobs, job)
		}
	}
	add(needHost, func() { hostFigs = experiments.RunHostFigures(dur) })
	add(needNI, func() { niFigs = experiments.RunNIFigures(dur / 2) })
	add(all || *table == 1, func() { t1 = experiments.RunTable1() })
	add(all || *table == 2, func() { t2 = experiments.RunTable2() })
	add(all || *table == 3, func() { t3 = experiments.RunTable3() })
	add(all || *table == 4, func() { t4 = experiments.RunTable4() })
	add(all || *table == 5, func() { t5 = experiments.RunTable5() })
	add(all || *headline, func() { headlineRes = experiments.RunHeadline() })
	add(all || *scaling, func() { _, sca = experiments.RunStreamScaling([]int{4, 16, 64, 256}) })
	add(*faultsRun, func() { faultRec = experiments.RunFaultRecovery(experiments.FaultConfig{Dur: dur}) })
	add(*telemetryRun, func() { telArt = experiments.RunTelemetry(experiments.TelemetryConfig{Dur: dur}) })
	add(*sloRun, func() { sloArt = experiments.RunDiagnostics(experiments.DiagnosticsConfig{Dur: dur}) })
	// The overload sweep manages its own worker pool (its grid cells are the
	// parallel unit), so it runs after the shared fan-out, not inside it.
	experiments.Parallel(jobs...)
	if *overloadRun {
		ow := *overloadWorkers
		if ow == 0 {
			ow = *workers // -workers governs unless the sweep-specific knob is set
		}
		ovArt = experiments.RunOverload(experiments.OverloadConfig{Dur: dur, Workers: ow})
	}

	for _, res := range []*experiments.Result{t1, t2, t3, t4, t5, headlineRes, sca} {
		if res != nil {
			fmt.Print(res)
		}
	}
	if faultRec != nil {
		fmt.Print(faultRec.Result())
	}
	if hostFigs != nil {
		if all || *figure == 6 {
			fmt.Print(hostFigs.Figure6())
		}
		if all || *figure == 7 {
			fmt.Print(hostFigs.Figure7())
		}
		if all || *figure == 8 {
			fmt.Print(hostFigs.Figure8())
		}
	}
	if niFigs != nil {
		if all || *figure == 9 {
			fmt.Print(niFigs.Figure9())
		}
		if all || *figure == 10 {
			fmt.Print(niFigs.Figure10())
		}
	}
	if all && hostFigs != nil && niFigs != nil {
		fmt.Print(experiments.JitterComparison(hostFigs, niFigs))
	}

	if telArt != nil {
		if err := dumpTelemetry(*telemetryOut, telArt); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		fmt.Print(telArt.Summary)
		fmt.Print(telArt.StageTable)
		fmt.Print(telArt.CycleTable)
		// Status goes to stderr: stdout carries only deterministic artifact
		// text, so CI can diff two runs writing to different directories.
		fmt.Fprintf(os.Stderr, "telemetry artifacts written to %s\n", *telemetryOut)
	}

	if ovArt != nil {
		if err := dumpOverload(*overloadOut, ovArt); err != nil {
			fmt.Fprintln(os.Stderr, "overload:", err)
			os.Exit(1)
		}
		fmt.Print(ovArt.Summary)
		fmt.Print(ovArt.Ladder)
		fmt.Print(ovArt.Table)
		fmt.Fprintf(os.Stderr, "overload artifacts written to %s\n", *overloadOut)
	}

	if sloArt != nil {
		if err := dumpDiagnostics(*sloOut, sloArt); err != nil {
			fmt.Fprintln(os.Stderr, "slo:", err)
			os.Exit(1)
		}
		fmt.Print(sloArt.Summary)
		fmt.Print(sloArt.SLO)
		fmt.Fprintf(os.Stderr, "diagnostics artifacts written to %s\n", *sloOut)
	}

	if *csvDir != "" {
		if err := dumpCSV(*csvDir, hostFigs, niFigs, faultRec); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("curves written to %s\n", *csvDir)
	}
}

// dumpTelemetry writes the observability artifacts of an instrumented run.
func dumpTelemetry(dir string, a *experiments.TelemetryArtifacts) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		body []byte
	}{
		{"trace.json", a.TraceJSON},
		{"metrics.prom", []byte(a.Prom)},
		{"metrics.csv", []byte(a.CSV)},
		{"stages.txt", []byte(a.StageTable)},
		{"spans.folded", []byte(a.Folded)},
		{"cycles.txt", []byte(a.CycleTable)},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.body, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// dumpOverload writes the overload sweep's artifacts: the pinned ladder
// summary, the full grid as CSV, the claim table, and the prose verdicts.
func dumpOverload(dir string, a *experiments.OverloadArtifacts) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		body string
	}{
		{"ladder.txt", a.Ladder},
		{"overload.csv", a.CSV},
		{"table.txt", a.Table.String()},
		{"summary.txt", a.Summary},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// dumpDiagnostics writes the chaos-diagnostics artifacts: the incident dumps
// from the flight recorder, the SLO health table, the metrics/stage views the
// run-diff engine consumes, and the chaos plan that produced them.
func dumpDiagnostics(dir string, a *experiments.DiagnosticsArtifacts) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		body string
	}{
		{"incidents.txt", a.Incidents},
		{"slo.txt", a.SLO},
		{"metrics.csv", a.MetricsCSV},
		{"stages.txt", a.Stages},
		{"plan.txt", a.Plan},
		{"summary.txt", a.Summary},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func dumpCSV(dir string, hostFigs *experiments.HostFigures, niFigs *experiments.NIFigures, faultRec *experiments.FaultRecovery) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, body string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
	}
	if hostFigs != nil {
		for pct, run := range hostFigs.Runs {
			prefix := fmt.Sprintf("host-load%.0f", pct)
			if err := write(prefix+"-util.csv", run.Util.CSV()); err != nil {
				return err
			}
			for name, s := range run.BW {
				if err := write(fmt.Sprintf("%s-bw-%s.csv", prefix, name), s.CSV()); err != nil {
					return err
				}
			}
			for name, d := range run.QDelay {
				if err := write(fmt.Sprintf("%s-qdelay-%s.csv", prefix, name), d.CSV()); err != nil {
					return err
				}
			}
		}
	}
	if niFigs != nil {
		for label, run := range map[string]*experiments.StreamCurves{
			"ni-noload": niFigs.NoLoad, "ni-load60": niFigs.Loaded60,
		} {
			for name, s := range run.BW {
				if err := write(fmt.Sprintf("%s-bw-%s.csv", label, name), s.CSV()); err != nil {
					return err
				}
			}
			for name, d := range run.QDelay {
				if err := write(fmt.Sprintf("%s-qdelay-%s.csv", label, name), d.CSV()); err != nil {
					return err
				}
			}
		}
	}
	if faultRec != nil {
		for name, s := range faultRec.BW {
			if err := write("fault-bw-"+name+".csv", s.CSV()); err != nil {
				return err
			}
		}
	}
	return nil
}
